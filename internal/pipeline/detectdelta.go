package pipeline

// Incremental detection (ROADMAP item 1). PR 3 made benefit pricing
// incremental; this file extends the same philosophy upstream into the
// four §IV detectors, which previously rebuilt their similarity-join
// postings, kNN neighbour lists and ERG scan inputs from scratch in
// every iteration even though a composite question repairs only a
// handful of cells.
//
// The contract mirrors the deltaPricer's exactly:
//
//   - bit-identical results: every question a maintained structure
//     serves is the very value the full rebuild would produce (exact
//     float equality), enforced by the detect-equivalence suite;
//   - a Config.NoIncrementalDetect kill switch restores the full
//     rebuild everywhere;
//   - automatic fallback on any maintenance miss: a tuple whose cached
//     neighbour list was invalidated (or never built) is recomputed
//     from the live index, and an eligibility revocation — which the
//     apply paths never produce, but is guarded anyway — flushes the
//     whole cache;
//   - accept/fallback counters surfaced through internal/obs alongside
//     the deltaPricer stats (visclean_detect_* in DESIGN.md §5).
//
// What is maintained, and why each maintenance rule is exact:
//
// Q_A — the expensive half of Algorithm 1 is Strategy 2's string
// similarity join over an attribute column's distinct values. Those
// values never change during cleaning (repairs rewrite only the measure
// column; standardization is tracked logically in Session.std), so the
// join runs once per column into a goldenrec.SimIndex and each
// iteration only re-filters its pairs against the current clustering.
//
// Q_M/Q_O — per-tuple top-k neighbour lists over the shared kNN token
// index are cached across iterations. A cached list stays the exact
// top-k under two invalidation rules: (1) rows whose token sets changed
// (an approved synonym changed a value's canonical form; see
// Session.maintainKnnIndex) poison every list they appear in — as
// target or neighbour — which is then dropped and lazily recomputed;
// (2) rows that became repair-eligible (their measure cell gained a
// value via an M/O repair) are insertion-tried into every surviving
// list, which is exact because the eligible set only ever grows.
// Suggested values are recomputed from live measure cells at serve
// time, in cached neighbour rank order — the same left-to-right float
// summation the imputer performs — so measure repairs on neighbouring
// rows never stale a list (token sets exclude the measure column, so
// rankings are unaffected).
//
// ERG scans — candidate-pair-by-values lookup and isolated-vertex
// attachment iterate the full blocking candidate list per iteration;
// both depend only on session-immutable data (candidate pairs and
// attribute cells) and are answered from a static em.CandidateIndex.

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/em"
	"visclean/internal/goldenrec"
	"visclean/internal/impute"
	"visclean/internal/knn"
	"visclean/internal/stringsim"
)

// detectStats is one iteration's incremental-detection accounting,
// copied into the Report after each detect phase.
type detectStats struct {
	// accepts counts neighbour-list lookups served from the maintained
	// cache; fallbacks counts lookups recomputed from the live index
	// (first sight or maintenance miss).
	accepts   int
	fallbacks int
	// full marks an iteration that ran the full detect path
	// (Config.NoIncrementalDetect).
	full bool
}

// detectDelta owns the incrementally maintained detection state of one
// session. Created lazily on the first detect of a session with
// incremental detection enabled.
type detectDelta struct {
	s *Session

	// simIdx holds one precomputed similarity join per A-column.
	simIdx map[int]*goldenrec.SimIndex

	// candIdx is the static inverted candidate index for ERG scans.
	candIdx *em.CandidateIndex

	// neigh caches per-tuple top-k neighbour lists (knn.Nearest order:
	// descending sim, ascending id). elig snapshots per-row repair
	// eligibility (row has a numeric measure value) as of the last sync;
	// tokDirty accumulates rows re-tokenized since then.
	neigh    map[dataset.TupleID][]knn.Neighbor
	elig     []bool
	tokDirty map[int]struct{}

	// Session-lifetime counters, mirrored into obs after each iteration.
	accepts   int
	fallbacks int
}

// detector returns the session's incremental detection state, or nil
// when the kill switch is on.
func (s *Session) detector() *detectDelta {
	if s.cfg.NoIncrementalDetect {
		return nil
	}
	if s.detect == nil {
		s.detect = &detectDelta{
			s:      s,
			simIdx: make(map[int]*goldenrec.SimIndex),
			neigh:  make(map[dataset.TupleID][]knn.Neighbor),
		}
	}
	return s.detect
}

// markTokenDirty records rows whose token sets were rebuilt; consumed by
// the next sync.
func (d *detectDelta) markTokenDirty(rows []int) {
	if d.tokDirty == nil {
		d.tokDirty = make(map[int]struct{}, len(rows))
	}
	for _, r := range rows {
		d.tokDirty[r] = struct{}{}
	}
}

// flush drops every cached neighbour list (full fallback).
func (d *detectDelta) flush() {
	d.neigh = make(map[dataset.TupleID][]knn.Neighbor)
}

// sync reconciles the neighbour cache with the repairs applied since the
// previous detect: poisoned lists are dropped, newly eligible and
// re-tokenized rows are insertion-tried into the survivors.
func (d *detectDelta) sync(ix *knn.Index) {
	n := d.s.table.NumRows()
	var newElig []int
	if d.elig == nil {
		d.elig = make([]bool, n)
		for i := 0; i < n; i++ {
			d.elig[i] = d.eligAccept(i)
		}
	} else {
		for i := 0; i < n; i++ {
			e := d.eligAccept(i)
			if e == d.elig[i] {
				continue
			}
			d.elig[i] = e
			if e {
				newElig = append(newElig, i)
			} else {
				// Repairs only ever write measure values, so eligibility
				// should never revoke; if it somehow does, every cached
				// list may contain a now-ineligible neighbour — fall back
				// to full recomputation.
				d.flush()
			}
		}
	}

	tok := d.tokDirty
	d.tokDirty = nil
	if len(tok) > 0 {
		for id, ns := range d.neigh {
			row, ok := d.s.table.RowIndex(id)
			if !ok {
				delete(d.neigh, id)
				continue
			}
			if _, bad := tok[row]; bad {
				delete(d.neigh, id)
				continue
			}
			for _, nb := range ns {
				if _, bad := tok[nb.Row]; bad {
					delete(d.neigh, id)
					break
				}
			}
		}
	}

	// Insertion candidates: rows that became eligible, plus re-tokenized
	// rows that are eligible (their similarity to any surviving list's
	// target may have risen above its k-th entry). Surviving lists cannot
	// already contain either kind — ineligible rows are never cached, and
	// lists containing a re-tokenized row were just dropped.
	cands := append([]int(nil), newElig...)
	for r := range tok {
		if r >= 0 && r < len(d.elig) && d.elig[r] {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		return
	}
	sort.Ints(cands)
	cands = dedupSortedInts(cands)
	k := d.s.cfg.ImputeK
	for id, ns := range d.neigh {
		row, ok := d.s.table.RowIndex(id)
		if !ok {
			continue
		}
		changed := false
		for _, r := range cands {
			if r == row {
				continue
			}
			nb := knn.Neighbor{
				Row: r,
				ID:  d.s.table.ID(r),
				Sim: stringsim.JaccardSets(ix.Tokens(row), ix.Tokens(r)),
			}
			var ins bool
			ns, ins = insertNeighbor(ns, nb, k)
			changed = changed || ins
		}
		if changed {
			d.neigh[id] = ns
		}
	}
}

// eligAccept is the imputer's neighbour filter: the row has a usable
// measure value.
func (d *detectDelta) eligAccept(i int) bool {
	_, ok := d.s.table.Get(i, d.s.yCol).Float()
	return ok
}

// insertNeighbor places nb into a rank-ordered neighbour list (descending
// sim, ascending id) capped at k, reporting whether the list changed.
func insertNeighbor(ns []knn.Neighbor, nb knn.Neighbor, k int) ([]knn.Neighbor, bool) {
	pos := len(ns)
	for i, x := range ns {
		if nb.Sim > x.Sim || (nb.Sim == x.Sim && nb.ID < x.ID) {
			pos = i
			break
		}
	}
	if pos == len(ns) {
		if k > 0 && len(ns) >= k {
			return ns, false
		}
		return append(ns, nb), true
	}
	ns = append(ns, knn.Neighbor{})
	copy(ns[pos+1:], ns[pos:])
	ns[pos] = nb
	if k > 0 && len(ns) > k {
		ns = ns[:k]
	}
	return ns, true
}

func dedupSortedInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// suggestFor serves one kNN repair suggestion with the session's
// neighbourhood size, from the cache when a valid list exists.
func (d *detectDelta) suggestFor(id dataset.TupleID) (impute.Suggestion, bool) {
	return d.suggestForK(id, d.s.cfg.ImputeK)
}

// suggestForK is suggestFor at an explicit neighbourhood size; sizes
// other than the session default bypass the cache (they occur only on
// degenerate tables where the outlier detector clamps k below ImputeK).
func (d *detectDelta) suggestForK(id dataset.TupleID, k int) (impute.Suggestion, bool) {
	row, ok := d.s.table.RowIndex(id)
	if !ok {
		return impute.Suggestion{}, false
	}
	var ns []knn.Neighbor
	if k != d.s.cfg.ImputeK {
		ns = d.s.knnIdx().Nearest(row, k, d.eligAccept)
		d.fallbacks++
		d.s.lastDetect.fallbacks++
	} else if cached, ok := d.neigh[id]; ok {
		ns = cached
		d.accepts++
		d.s.lastDetect.accepts++
	} else {
		ns = d.s.knnIdx().Nearest(row, k, d.eligAccept)
		d.neigh[id] = ns
		d.fallbacks++
		d.s.lastDetect.fallbacks++
	}
	if len(ns) == 0 {
		return impute.Suggestion{}, false
	}
	// Identical arithmetic to impute.Imputer.SuggestFor: measure values
	// summed left to right in neighbour rank order, then divided.
	sum := 0.0
	sug := impute.Suggestion{ID: id}
	for _, n := range ns {
		y, _ := d.s.table.Get(n.Row, d.s.yCol).Float()
		sum += y
		sug.Neighbors = append(sug.Neighbors, n.ID)
	}
	sug.Value = sum / float64(len(ns))
	return sug, true
}

// aCandidates serves one column's Algorithm 1 candidates from the
// precomputed similarity join.
func (d *detectDelta) aCandidates(groups [][]dataset.TupleID, col int, threshold float64) []goldenrec.Candidate {
	ix, ok := d.simIdx[col]
	if !ok {
		ix = d.s.simIndexFor(col, threshold)
		d.simIdx[col] = ix
	}
	return ix.Candidates(d.s.table, groups)
}

// candidateIndex lazily builds the static inverted candidate index.
func (d *detectDelta) candidateIndex() *em.CandidateIndex {
	if d.candIdx == nil {
		d.candIdx = em.NewCandidateIndex(d.s.table, d.s.candidates, d.s.aColumns)
	}
	return d.candIdx
}
