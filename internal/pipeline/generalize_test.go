package pipeline

import (
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/vql"
)

// generalizeFixture builds a session over a venue table where exactly one
// approval should generalize to unseen variants.
func generalizeFixture(t *testing.T) *Session {
	t.Helper()
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Title", Kind: dataset.String},
		{Name: "Venue", Kind: dataset.String},
		{Name: "Citations", Kind: dataset.Float},
	})
	rows := []struct {
		title, venue string
		cites        float64
	}{
		{"paper one", "SIGMOD", 10},
		{"paper two", "ACM SIGMOD", 20},
		{"paper three", "ACM KDD", 30},
		{"paper four", "KDD", 40},
		{"paper five", "VLDB", 50},
		{"paper six", "Very Large Data Bases", 60},
	}
	for _, r := range rows {
		tbl.MustAppend([]dataset.Value{dataset.Str(r.title), dataset.Str(r.venue), dataset.Num(r.cites)})
	}
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM t TRANSFORM GROUP BY Venue`)
	s, err := NewSession(tbl, q, []int{0}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeneralizeApprovals(t *testing.T) {
	s := generalizeFixture(t)
	// One approval: ACM SIGMOD = SIGMOD. The learned rule ("acm" is
	// decorative) must also standardize ACM KDD with KDD, unseen.
	s.applyA("Venue", "ACM SIGMOD", "SIGMOD", true)
	s.rebuildStandardizers()
	st := s.std["Venue"]
	if !st.SameClass("ACM SIGMOD", "SIGMOD") {
		t.Fatal("explicit approval not applied")
	}
	if !st.SameClass("ACM KDD", "KDD") {
		t.Fatal("rule did not generalize to ACM KDD")
	}
	// No containment relation -> no generalization.
	if st.SameClass("VLDB", "Very Large Data Bases") {
		t.Fatal("over-generalized to non-containment pair")
	}
}

func TestGeneralizationRespectRejections(t *testing.T) {
	s := generalizeFixture(t)
	s.applyA("Venue", "ACM SIGMOD", "SIGMOD", true)
	// The user explicitly rejects ACM KDD = KDD; the rule must not
	// override the human.
	s.applyA("Venue", "ACM KDD", "KDD", false)
	s.rebuildStandardizers()
	st := s.std["Venue"]
	if st.SameClass("ACM KDD", "KDD") {
		t.Fatal("generalization overrode an explicit rejection")
	}
	if !st.SameClass("ACM SIGMOD", "SIGMOD") {
		t.Fatal("explicit approval lost")
	}
}

func TestRejectionCutsEarlierApproval(t *testing.T) {
	s := generalizeFixture(t)
	// A (wrong) approval merges SIGMOD with VLDB; a later rejection of
	// the same pair must cut the class apart on rebuild.
	s.applyA("Venue", "SIGMOD", "VLDB", true)
	s.rebuildStandardizers()
	if !s.std["Venue"].SameClass("SIGMOD", "VLDB") {
		t.Fatal("setup: approval not applied")
	}
	s.applyA("Venue", "SIGMOD", "VLDB", false)
	s.rebuildStandardizers()
	if s.std["Venue"].SameClass("SIGMOD", "VLDB") {
		t.Fatal("rejection did not cut the wrong merge")
	}
}
