// Package artifact is the cross-session shared artifact cache
// (DESIGN.md §12): a refcounted, byte-budgeted store of immutable
// per-dataset structures keyed by (dataset fingerprint, kind). Many
// concurrent sessions over the same data each rebuild identical token
// indexes, frozen standardizers, similarity-join posting lists, match
// candidates and first-trained forests; the cache lets the first session
// build each one and every later session adopt it.
//
// The contract that keeps sharing deterministic: a cached artifact must
// be a pure function of the table content named by the fingerprint (plus
// whatever parameters the kind string encodes), and strictly read-only
// once stored. Sessions that need mutable state clone the shared
// skeleton privately (see internal/pipeline's artifact wrappers).
//
// Construction is single-flight: the first Acquire of a missing key runs
// the builder while concurrent acquirers of the same key block until it
// finishes; they all share the one result. Handles are refcounted —
// an artifact with outstanding handles is pinned and never evicted, no
// matter how far over budget the cache is. When the total size exceeds
// the byte budget, unreferenced artifacts are evicted least recently
// used first.
package artifact

import (
	"container/list"
	"sync"
	"time"
)

// Artifact is anything the cache can hold. Bytes reports the artifact's
// approximate heap footprint; it is read once at insert time and drives
// budget accounting, so it must be stable.
type Artifact interface {
	Bytes() int64
}

// Cache is the shared store. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Cache struct {
	budget int64 // ≤ 0: unlimited

	mu      sync.Mutex
	entries map[string]*entry
	idle    *list.List // unreferenced entries, front = least recently used
	bytes   int64      // total Bytes() of built entries
}

// entry is one (fingerprint, kind) slot. done closes when the build
// finishes; art/err are valid only after that.
type entry struct {
	key  string
	refs int
	done chan struct{}
	art  Artifact
	err  error
	size int64         // art.Bytes() captured at insert
	elem *list.Element // position in idle when refs == 0, else nil
}

// Handle is one session's reference to a cached artifact. Release it
// when the session closes; an unreleased handle pins the artifact
// forever.
type Handle struct {
	cache *Cache
	e     *entry
	once  sync.Once
}

// New returns a cache that evicts unreferenced artifacts LRU-first once
// total size exceeds budget bytes. budget ≤ 0 disables eviction.
func New(budget int64) *Cache {
	return &Cache{
		budget:  budget,
		entries: make(map[string]*entry),
		idle:    list.New(),
	}
}

// Acquire returns a handle on the artifact for (fingerprint, kind),
// running build if no session has produced it yet. Concurrent Acquires
// of the same key share one build; the callers that waited observe the
// single-flight wait metric. A failed build is not cached: the error
// propagates to every waiter and the next Acquire retries.
//
// kind must encode every parameter the artifact depends on beyond the
// table content (thresholds, seeds, column choices) so two sessions
// that would build different artifacts can never share a key.
func (c *Cache) Acquire(fingerprint, kind string, build func() (Artifact, error)) (*Handle, error) {
	key := fingerprint + "\x00" + kind

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.ref(c)
		c.mu.Unlock()
		obsHits.Inc()
		if waited := waitBuilt(e); waited > 0 {
			obsWait.Observe(waited.Seconds())
		}
		if e.err != nil {
			// The build we piggybacked on failed; the builder already
			// removed the entry, so there is nothing to unref.
			return nil, e.err
		}
		return &Handle{cache: c, e: e}, nil
	}

	e := &entry{key: key, refs: 1, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	obsMisses.Inc()

	art, err := build()

	c.mu.Lock()
	e.art, e.err = art, err
	if err != nil {
		delete(c.entries, key)
	} else {
		e.size = art.Bytes()
		c.bytes += e.size
		c.evictLocked()
	}
	obsBytes.Set(c.bytes)
	obsEntries.Set(int64(len(c.entries)))
	close(e.done)
	c.mu.Unlock()

	if err != nil {
		return nil, err
	}
	return &Handle{cache: c, e: e}, nil
}

// waitBuilt blocks until e's build finishes and returns how long it
// waited (0 when the artifact was already built).
func waitBuilt(e *entry) time.Duration {
	select {
	case <-e.done:
		return 0
	default:
	}
	start := time.Now()
	<-e.done
	return time.Since(start)
}

// ref takes one reference, removing the entry from the idle list if this
// is the first. Callers hold c.mu.
func (e *entry) ref(c *Cache) {
	e.refs++
	if e.elem != nil {
		c.idle.Remove(e.elem)
		e.elem = nil
	}
}

// Artifact returns the cached value. It panics if the handle came from a
// failed Acquire (which returns a nil handle alongside the error).
func (h *Handle) Artifact() Artifact { return h.e.art }

// Release drops this handle's reference. Idempotent: extra calls are
// no-ops, so defensive double-release in teardown paths is safe.
func (h *Handle) Release() {
	h.once.Do(func() {
		c := h.cache
		c.mu.Lock()
		defer c.mu.Unlock()
		e := h.e
		e.refs--
		if e.refs > 0 {
			return
		}
		// Last reference gone: the entry becomes evictable. Most
		// recently used sits at the back of the idle list.
		if c.entries[e.key] == e {
			e.elem = c.idle.PushBack(e)
			c.evictLocked()
			obsBytes.Set(c.bytes)
			obsEntries.Set(int64(len(c.entries)))
		}
	})
}

// evictLocked drops unreferenced entries LRU-first until the cache fits
// its budget. Referenced entries are pinned: the cache can stay over
// budget indefinitely if sessions hold everything. Callers hold c.mu.
func (c *Cache) evictLocked() {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		front := c.idle.Front()
		if front == nil {
			return
		}
		e := front.Value.(*entry)
		c.idle.Remove(front)
		e.elem = nil
		delete(c.entries, e.key)
		c.bytes -= e.size
		obsEvictions.Inc()
	}
}

// Stats is a point-in-time snapshot of the cache for tests and
// debugging; the live metrics are exported via internal/obs.
type Stats struct {
	Entries int   // built or building entries currently cached
	Idle    int   // entries with no outstanding handles
	Bytes   int64 // total Bytes() of built entries
}

// Stats returns the current cache occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: len(c.entries), Idle: c.idle.Len(), Bytes: c.bytes}
}
