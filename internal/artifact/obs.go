package artifact

// Metrics for the shared artifact cache (DESIGN.md §5, §12). The cache
// mutates these on every Acquire/Release/eviction; with obs disabled
// each is a gated atomic no-op, and nothing here feeds back into cache
// decisions, so determinism is untouched either way.

import "visclean/internal/obs"

var (
	obsHits = obs.Default.Counter("visclean_artifact_hits_total",
		"Acquires served by an already-cached (or in-flight) artifact.")
	obsMisses = obs.Default.Counter("visclean_artifact_misses_total",
		"Acquires that had to run the artifact builder.")
	obsEvictions = obs.Default.Counter("visclean_artifact_evictions_total",
		"Unreferenced artifacts evicted LRU-first to fit the byte budget.")
	obsBytes = obs.Default.Gauge("visclean_artifact_bytes",
		"Total reported Bytes() of cached artifacts.")
	obsEntries = obs.Default.Gauge("visclean_artifact_entries",
		"Artifacts currently cached (built or building).")
	obsWait = obs.Default.Histogram("visclean_artifact_wait_seconds",
		"Time acquirers spent blocked on another session's single-flight build.",
		obs.TimeBuckets)
)
