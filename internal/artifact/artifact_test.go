package artifact

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// fake is a test artifact with a fixed size.
type fake struct {
	id   int
	size int64
}

func (f *fake) Bytes() int64 { return f.size }

func build(id int, size int64) func() (Artifact, error) {
	return func() (Artifact, error) { return &fake{id: id, size: size}, nil }
}

func TestAcquireSharesOneBuild(t *testing.T) {
	c := New(0)
	var builds atomic.Int64
	const n = 16
	arts := make([]Artifact, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Acquire("fp", "kind", func() (Artifact, error) {
				builds.Add(1)
				return &fake{id: 1, size: 10}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = h.Artifact()
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("builder ran %d times, want 1 (single-flight)", builds.Load())
	}
	for i := 1; i < n; i++ {
		if arts[i] != arts[0] {
			t.Fatal("concurrent acquirers got different artifacts")
		}
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("stats = %+v, want 1 entry of 10 bytes", st)
	}
}

func TestBuildErrorRetries(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.Acquire("fp", "k", func() (Artifact, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed build left %d entries cached", st.Entries)
	}
	// The failure is not cached: the next Acquire runs the builder again.
	h, err := c.Acquire("fp", "k", build(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if h.Artifact().(*fake).id != 2 {
		t.Fatal("retry did not run the new builder")
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	c := New(100)
	held, err := c.Acquire("fp", "held", build(1, 80))
	if err != nil {
		t.Fatal(err)
	}
	// Churn unrelated artifacts far past the budget. The held artifact
	// has an outstanding handle and must never be evicted.
	for i := 0; i < 10; i++ {
		h, err := c.Acquire("fp", fmt.Sprintf("churn%d", i), build(100+i, 60))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	h2, err := c.Acquire("fp", "held", func() (Artifact, error) {
		t.Error("held artifact was evicted while referenced")
		return &fake{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h2.Artifact() != held.Artifact() {
		t.Fatal("re-acquire returned a different artifact")
	}
	h2.Release()
	held.Release()
}

func TestEvictionIsLRU(t *testing.T) {
	c := New(350)
	for _, kind := range []string{"a", "b", "c"} {
		h, err := c.Acquire("fp", kind, build(0, 100))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	// Touch "a" so "b" becomes least recently used.
	h, err := c.Acquire("fp", "a", func() (Artifact, error) {
		t.Error("a should still be cached")
		return &fake{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	// Inserting "d" overflows the budget by one entry: "b" must go.
	h, err = c.Acquire("fp", "d", build(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	rebuilt := map[string]bool{}
	for _, kind := range []string{"a", "b", "c", "d"} {
		kind := kind
		h, err := c.Acquire("fp", kind, func() (Artifact, error) {
			rebuilt[kind] = true
			return &fake{size: 100}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if rebuilt["b"] != true {
		t.Error("LRU entry b was not evicted")
	}
	if rebuilt["a"] {
		t.Error("recently used entry a was evicted before b")
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c := New(0)
	h, err := c.Acquire("fp", "k", build(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Acquire("fp", "k", build(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release() // double release must not steal h2's reference
	if st := c.Stats(); st.Idle != 0 {
		t.Fatalf("idle = %d after double release with a live handle, want 0", st.Idle)
	}
	h2.Release()
	if st := c.Stats(); st.Idle != 1 {
		t.Fatalf("idle = %d after final release, want 1", st.Idle)
	}
}

func TestUnlimitedBudgetNeverEvicts(t *testing.T) {
	c := New(0)
	for i := 0; i < 50; i++ {
		h, err := c.Acquire("fp", fmt.Sprintf("k%d", i), build(i, 1<<20))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	if st := c.Stats(); st.Entries != 50 {
		t.Fatalf("entries = %d, want 50 (budget 0 means no eviction)", st.Entries)
	}
}

func TestConcurrentChurn(t *testing.T) {
	// Hammer a tiny cache from many goroutines; the race detector and
	// the internal accounting assertions below are the test.
	c := New(300)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				kind := fmt.Sprintf("k%d", (g+i)%13)
				h, err := c.Acquire("fp", kind, build(i, 50))
				if err != nil {
					t.Error(err)
					return
				}
				if h.Artifact() == nil {
					t.Error("nil artifact from successful acquire")
					return
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 300 {
		t.Fatalf("cache settled at %d bytes with no handles outstanding, budget 300", st.Bytes)
	}
	if st.Idle != st.Entries {
		t.Fatalf("idle = %d but entries = %d with no handles outstanding", st.Idle, st.Entries)
	}
}
