package loadgen

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Stats is the concurrent sink every driver reports into.
type Stats struct {
	mu        sync.Mutex
	answerLat []float64 // milliseconds
	iterLat   []float64 // milliseconds (iterate POST → accepted)
	nCreated  int
	nComplete int
	nFailed   int
	nRejects  int // 503 backpressure responses observed
	nRetries  int // all transient-retry events
}

func NewStats() *Stats { return &Stats{} }

func (s *Stats) answerLatency(d time.Duration) {
	s.mu.Lock()
	s.answerLat = append(s.answerLat, float64(d)/float64(time.Millisecond))
	s.mu.Unlock()
}

func (s *Stats) iterateLatency(d time.Duration) {
	s.mu.Lock()
	s.iterLat = append(s.iterLat, float64(d)/float64(time.Millisecond))
	s.mu.Unlock()
}

// Answered reports how many answers have been acked so far — the
// chaos harness uses it to time a shard kill mid-storm.
func (s *Stats) Answered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.answerLat)
}

func (s *Stats) created()  { s.mu.Lock(); s.nCreated++; s.mu.Unlock() }
func (s *Stats) complete() { s.mu.Lock(); s.nComplete++; s.mu.Unlock() }
func (s *Stats) fail()     { s.mu.Lock(); s.nFailed++; s.mu.Unlock() }
func (s *Stats) reject()   { s.mu.Lock(); s.nRejects++; s.mu.Unlock() }
func (s *Stats) retry()    { s.mu.Lock(); s.nRetries++; s.mu.Unlock() }

// Percentile returns the p-th percentile (0–100, nearest-rank) of vs,
// or 0 when empty.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	// Nearest-rank definition: the smallest element with at least p% of
	// the sample at or below it, i.e. ceil(p/100·n), 1-based. Rounding
	// (+0.5) under-reported whenever the rank fraction fell below .5 —
	// e.g. p10 of 13 samples is ceil(1.3)=2 but rounded to 1.
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// LatencySummary condenses a latency sample (milliseconds).
type LatencySummary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func summarize(vs []float64) LatencySummary {
	out := LatencySummary{Count: len(vs)}
	if len(vs) == 0 {
		return out
	}
	out.P50Ms = Percentile(vs, 50)
	out.P90Ms = Percentile(vs, 90)
	out.P99Ms = Percentile(vs, 99)
	for _, v := range vs {
		if v > out.MaxMs {
			out.MaxMs = v
		}
	}
	return out
}

// ShardLoad is one shard's row in the report.
type ShardLoad struct {
	Shard    string `json:"shard"`
	Sessions int    `json:"sessions"` // -1 when unreachable
}

// Report is the BENCH_load.json document.
type Report struct {
	Sessions    int     `json:"sessions"`
	Concurrency int     `json:"concurrency"`
	Iterations  int     `json:"iterations_per_session"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
	ElapsedSec  float64 `json:"elapsed_sec"`

	Answer  LatencySummary `json:"answer_latency"`
	Iterate LatencySummary `json:"iterate_latency"`

	Rejects503 int `json:"rejects_503"`
	Retries    int `json:"retries"`

	SessionsPerShard []ShardLoad `json:"sessions_per_shard,omitempty"`

	// Migrations/Retries/Requests come from the router's /metrics.
	RouterMetrics map[string]float64 `json:"router_metrics,omitempty"`
}

// buildReport assembles the report and scrapes shard placement plus
// the router's visclean_router_* families.
func buildReport(opts Options, stats *Stats, elapsed time.Duration) *Report {
	stats.mu.Lock()
	rep := &Report{
		Sessions:    opts.Sessions,
		Concurrency: opts.Concurrency,
		Iterations:  opts.Iterations,
		Completed:   stats.nComplete,
		Failed:      stats.nFailed,
		ElapsedSec:  elapsed.Seconds(),
		Answer:      summarize(stats.answerLat),
		Iterate:     summarize(stats.iterLat),
		Rejects503:  stats.nRejects,
		Retries:     stats.nRetries,
	}
	stats.mu.Unlock()

	for _, sh := range opts.Shards {
		rep.SessionsPerShard = append(rep.SessionsPerShard, ShardLoad{
			Shard:    sh,
			Sessions: countSessions(opts.Client, sh),
		})
	}
	if fams, err := ScrapeMetrics(opts.Client, opts.BaseURL); err == nil {
		rep.RouterMetrics = make(map[string]float64)
		for name, v := range fams {
			if strings.HasPrefix(name, "visclean_router_") {
				rep.RouterMetrics[name] = v
			}
		}
	}
	return rep
}

// countSessions asks one shard how many sessions it holds.
func countSessions(client *http.Client, base string) int {
	resp, err := client.Get(base + "/api/sessions")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var part []json.RawMessage
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&part) != nil {
		return -1
	}
	return len(part)
}

// ScrapeMetrics fetches a /metrics endpoint and folds the Prometheus
// text into name → summed value (labels collapsed, histogram series
// kept under their full sample names like family_bucket).
func ScrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "name{labels} value" or "name value"
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		out[name] += v
	}
	return out, sc.Err()
}

// WriteJSON writes the report to path, pretty-printed.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
