package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"visclean/internal/dataset"
	"visclean/internal/oracle"
)

// StateJSON mirrors the shard state response (internal/web
// stateResponse) — the fields a machine client needs.
type StateJSON struct {
	ID        string `json:"id"`
	Iteration int    `json:"iteration"`
	Running   bool   `json:"running"`
	Chart     struct {
		Labels []string  `json:"labels"`
		Values []float64 `json:"values"`
	} `json:"chart"`
	Truth    float64       `json:"distToTruth"`
	Question *QuestionJSON `json:"question"`
	Error    string        `json:"error"`
}

// QuestionJSON mirrors service.Question's wire form.
type QuestionJSON struct {
	ID      int     `json:"id"`
	Kind    string  `json:"kind"`
	Column  string  `json:"column"`
	V1      string  `json:"v1"`
	V2      string  `json:"v2"`
	Current float64 `json:"current"`
	TupleA  int     `json:"tupleA"`
	TupleB  int     `json:"tupleB"`
}

// AnswerJSON is the POST /api/session/{id}/answer body.
type AnswerJSON struct {
	Yes   *bool    `json:"yes,omitempty"`
	Value *float64 `json:"value,omitempty"`
	Skip  bool     `json:"skip,omitempty"`
}

// Fingerprint reduces a state to a bit-exact string over the chart and
// distance-to-truth: labels verbatim, floats via Float64bits, so two
// states agree iff their visible cleaning result is identical to the
// last bit. JSON float64 round-trips exactly in Go, which is what
// makes an HTTP-level fingerprint sound for the chaos tests'
// acked-answers-survive assertions.
func (st *StateJSON) Fingerprint() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "d=%016x", math.Float64bits(st.Truth))
	for i, l := range st.Chart.Labels {
		fmt.Fprintf(&b, "|%s=%016x", l, math.Float64bits(st.Chart.Values[i]))
	}
	return b.String()
}

// Policy answers questions from client-side ground truth, mirroring
// the in-process auto-oracle.
type Policy struct {
	o *oracle.Oracle
}

// NewPolicy builds a perfect-expert policy (Completeness 1, no lies):
// with zero noise the oracle never consults its RNG, so one policy is
// safe to share across goroutines and deterministic per question.
func NewPolicy(truth *oracle.GroundTruth, seed int64) *Policy {
	return &Policy{o: oracle.New(truth, seed)}
}

// Answer resolves one question into its wire answer.
func (p *Policy) Answer(q *QuestionJSON) AnswerJSON {
	yes := func(v bool) AnswerJSON { return AnswerJSON{Yes: &v} }
	switch q.Kind {
	case "T":
		match, ok := p.o.AnswerT(dataset.TupleID(q.TupleA), dataset.TupleID(q.TupleB))
		if !ok {
			return AnswerJSON{Skip: true}
		}
		return yes(match)
	case "A":
		same, ok := p.o.AnswerA(q.Column, q.V1, q.V2)
		if !ok {
			return AnswerJSON{Skip: true}
		}
		return yes(same)
	case "M":
		v, ok := p.o.AnswerM(q.Column, dataset.TupleID(q.TupleA))
		if !ok {
			return AnswerJSON{Skip: true}
		}
		return AnswerJSON{Value: &v}
	case "O":
		isOut, v, ok := p.o.AnswerO(q.Column, dataset.TupleID(q.TupleA), q.Current)
		if !ok {
			return AnswerJSON{Skip: true}
		}
		a := yes(isOut)
		if isOut {
			a.Value = &v
		}
		return a
	default:
		return AnswerJSON{Skip: true}
	}
}

// Driver runs one session end to end: create, then Iters full
// iterations with every question answered by the policy.
type Driver struct {
	Client *http.Client
	Base   string
	Spec   SpecJSON
	Policy *Policy
	Iters  int
	Stats  *Stats
	// Tolerant keeps retrying on transient failures (503 backpressure,
	// 404/410 during a failover-restore window, connection errors) —
	// storm mode. Without it the first unexpected status is fatal.
	Tolerant bool
	// PollEvery is the state poll interval (default 10ms).
	PollEvery time.Duration
	// Deadline bounds the whole session (default 5m).
	Deadline time.Duration
	Logf     func(format string, args ...any)

	// Boundaries records the state fingerprint observed at each
	// completed iteration count (0 = after creation). The chaos tests
	// compare these against a fault-free reference run: determinism
	// means boundary i of any run must equal boundary i of every other
	// run of the same spec.
	Boundaries map[int]string
	// FinalState is the last state observed.
	FinalState StateJSON
}

func (d *Driver) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// post sends a JSON POST and returns status and body.
func (d *Driver) post(path string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(http.MethodPost, d.Base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := d.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// getState polls the session state.
func (d *Driver) getState(id string) (StateJSON, int, error) {
	resp, err := d.Client.Get(d.Base + "/api/session/" + id + "/state")
	if err != nil {
		return StateJSON{}, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return StateJSON{}, 0, err
	}
	var st StateJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &st); err != nil {
			return StateJSON{}, resp.StatusCode, err
		}
	}
	return st, resp.StatusCode, nil
}

// backoff maps a retry attempt to a sleep, capped so a storm of
// drivers neither stampedes the shards nor stalls forever.
func backoff(attempt int) time.Duration {
	d := time.Duration(attempt) * 25 * time.Millisecond
	if d > 500*time.Millisecond {
		d = 500 * time.Millisecond
	}
	if d < 25*time.Millisecond {
		d = 25 * time.Millisecond
	}
	return d
}

// Run drives the session to completion.
func (d *Driver) Run() error {
	if d.PollEvery <= 0 {
		d.PollEvery = 10 * time.Millisecond
	}
	if d.Deadline <= 0 {
		d.Deadline = 5 * time.Minute
	}
	deadline := time.Now().Add(d.Deadline)

	if d.Boundaries == nil {
		d.Boundaries = make(map[int]string)
	}
	id, err := d.create(deadline)
	if err != nil {
		return err
	}

	// Record the creation-boundary fingerprint (best effort: a kill
	// window here just means boundary 0 goes unasserted).
	st, code, err := d.getState(id)
	if err == nil && code == http.StatusOK {
		d.Boundaries[st.Iteration] = st.Fingerprint()
		d.FinalState = st
	}

	completed := 0
	for completed < d.Iters {
		if time.Now().After(deadline) {
			return fmt.Errorf("deadline exceeded at iteration %d/%d", completed, d.Iters)
		}
		if err := d.startIteration(id, deadline); err != nil {
			return err
		}
		st, err := d.driveIteration(id, completed, deadline)
		if err != nil {
			return err
		}
		completed = st.Iteration
		d.Boundaries[st.Iteration] = st.Fingerprint()
		d.FinalState = st
	}
	return nil
}

// create creates the session, retrying through backpressure.
func (d *Driver) create(deadline time.Time) (string, error) {
	for attempt := 0; ; attempt++ {
		code, body, err := d.post("/api/session", d.Spec)
		if err == nil && code == http.StatusCreated {
			var out struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &out); err != nil {
				return "", err
			}
			d.Stats.created()
			return out.ID, nil
		}
		if err == nil && code == http.StatusConflict && d.Spec.ID != "" {
			// The id already exists — a previous attempt half-succeeded
			// (e.g. the create landed but its response was lost to a shard
			// kill). Adopt the session.
			d.Stats.created()
			return d.Spec.ID, nil
		}
		transient := err != nil || code == http.StatusServiceUnavailable || code >= 500
		if code == http.StatusServiceUnavailable {
			d.Stats.reject()
		}
		if !d.Tolerant || !transient || time.Now().After(deadline) {
			if err != nil {
				return "", fmt.Errorf("create: %w", err)
			}
			return "", fmt.Errorf("create: status %d: %s", code, string(body))
		}
		d.Stats.retry()
		time.Sleep(backoff(attempt))
	}
}

// startIteration schedules an iteration, absorbing transient refusals:
// 503 (queue full) backs off, 409 (already running — a previous
// attempt landed) proceeds to driving, 404/410 retries through the
// failover-restore window.
func (d *Driver) startIteration(id string, deadline time.Time) error {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		code, body, err := d.post("/api/session/"+id+"/iterate", nil)
		switch {
		case err == nil && code == http.StatusAccepted:
			d.Stats.iterateLatency(time.Since(start))
			return nil
		case err == nil && code == http.StatusConflict:
			return nil // already running: drive it
		case err == nil && code == http.StatusServiceUnavailable:
			d.Stats.reject()
		case err == nil && (code == http.StatusNotFound || code == http.StatusGone):
			// Failover window: the new owner hasn't restored it yet.
		case err == nil && code < 500:
			return fmt.Errorf("iterate: status %d: %s", code, string(body))
		}
		if !d.Tolerant && (err != nil || code != http.StatusServiceUnavailable) {
			if err != nil {
				return fmt.Errorf("iterate: %w", err)
			}
			return fmt.Errorf("iterate: status %d", code)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("iterate: deadline exceeded (last status %d, err %v)", code, err)
		}
		d.Stats.retry()
		time.Sleep(backoff(attempt))
	}
}

// driveIteration polls the session, answering every question, until
// the iteration count passes prev. A session that comes back from a
// shard kill mid-iteration is NOT running (restores land at the last
// boundary), so the poll loop also re-schedules the iteration when it
// finds the session idle at the old count.
func (d *Driver) driveIteration(id string, prev int, deadline time.Time) (StateJSON, error) {
	misses := 0
	for {
		if time.Now().After(deadline) {
			return StateJSON{}, fmt.Errorf("iteration %d: deadline exceeded", prev+1)
		}
		st, code, err := d.getState(id)
		switch {
		case err != nil:
			if !d.Tolerant {
				return StateJSON{}, err
			}
			d.Stats.retry()
			time.Sleep(backoff(misses))
			misses++
			continue
		case code == http.StatusNotFound || code == http.StatusGone:
			// Failover-restore window, or the kill landed between create
			// and first persist. Keep knocking; the ring successor will
			// restore it.
			if !d.Tolerant {
				return StateJSON{}, fmt.Errorf("state: status %d", code)
			}
			d.Stats.retry()
			time.Sleep(backoff(misses))
			misses++
			continue
		case code != http.StatusOK:
			if !d.Tolerant {
				return StateJSON{}, fmt.Errorf("state: status %d", code)
			}
			d.Stats.retry()
			time.Sleep(backoff(misses))
			misses++
			continue
		}
		misses = 0
		if st.Iteration > prev {
			return st, nil
		}
		if st.Question != nil {
			a := d.Policy.Answer(st.Question)
			ansStart := time.Now()
			code, _, err := d.post("/api/session/"+id+"/answer", a)
			if err == nil && code == http.StatusNoContent {
				d.Stats.answerLatency(time.Since(ansStart))
			} else if err == nil && code == http.StatusConflict {
				// The question resolved under us (timeout or a retried
				// answer landed twice) — poll again.
			} else if !d.Tolerant {
				return StateJSON{}, fmt.Errorf("answer: status %d err %v", code, err)
			} else {
				d.Stats.retry()
			}
			continue // answers usually unlock the next question immediately
		}
		if !st.Running {
			// Idle at the old count: a restore rewound to the boundary, or
			// the iterate never stuck. Re-schedule.
			if err := d.startIteration(id, deadline); err != nil {
				return StateJSON{}, err
			}
		}
		time.Sleep(d.PollEvery)
	}
}

// Close closes the session on the server (used by tests; load runs
// leave sessions for the placement scrape).
func (d *Driver) Close(id string) {
	req, err := http.NewRequest(http.MethodDelete, d.Base+"/api/session/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := d.Client.Do(req); err == nil {
		resp.Body.Close()
	}
}
