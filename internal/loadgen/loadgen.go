// Package loadgen drives a VisClean cluster (or a single viscleanweb)
// through full interactive cleaning sessions over HTTP: create →
// iterate → answer every composite question from a client-side
// ground-truth oracle → iterate → … It is the measurement half of the
// cluster work (DESIGN.md §9): hundreds of concurrent oracle-backed
// drivers produce the answer-latency distribution, per-shard session
// placement, rejection and migration counts that BENCH_load.json
// reports, and the chaos tests reuse the same drivers to storm a
// cluster while shards are killed.
//
// Drivers answer from the same ground truth the server's datasets were
// generated from — datagen is deterministic in (dataset, scale, seed),
// so the client can rebuild the oracle's knowledge locally and answer
// over the wire exactly like the in-process auto-oracle would.
package loadgen

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"visclean/internal/datagen"
	"visclean/internal/oracle"
)

// SpecJSON is the session spec a driver creates sessions with; its
// JSON form is the POST /api/session body.
type SpecJSON struct {
	ID       string  `json:"id,omitempty"`
	Dataset  string  `json:"dataset,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	K        int     `json:"k,omitempty"`
	Selector string  `json:"selector,omitempty"`
}

// TruthCache builds and memoizes ground truth per (dataset, scale,
// seed) so N drivers sharing a spec pay for one datagen run.
type TruthCache struct {
	mu sync.Mutex
	m  map[string]*oracle.GroundTruth
}

func NewTruthCache() *TruthCache {
	return &TruthCache{m: make(map[string]*oracle.GroundTruth)}
}

// Truth returns the ground truth for a spec, building it on first use.
func (tc *TruthCache) Truth(dataset string, scale float64, seed int64) (*oracle.GroundTruth, error) {
	key := fmt.Sprintf("%s|%g|%d", dataset, scale, seed)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if gt, ok := tc.m[key]; ok {
		return gt, nil
	}
	cfg := datagen.Config{Scale: scale, Seed: seed}
	var d *datagen.Dataset
	switch dataset {
	case "D1":
		d = datagen.D1(cfg)
	case "D2":
		d = datagen.D2(cfg)
	case "D3":
		d = datagen.D3(cfg)
	default:
		return nil, fmt.Errorf("loadgen: unknown dataset %q", dataset)
	}
	tc.m[key] = d.Truth
	return d.Truth, nil
}

// Options parameterizes a load run.
type Options struct {
	// BaseURL is the router (or single shard) the drivers talk to.
	BaseURL string
	// Shards are the individual shard base URLs, scraped after the storm
	// for per-shard session counts; empty means skip that column.
	Shards []string
	// Sessions is the total number of sessions to run.
	Sessions int
	// Concurrency caps simultaneously active sessions (default:
	// Sessions).
	Concurrency int
	// Iterations per session (default 2).
	Iterations int
	// Spec is the per-session spec template; each driver gets Seed +
	// (i % SeedSpread) so a few distinct datasets circulate.
	Spec SpecJSON
	// SeedSpread is how many distinct seeds to spread sessions over
	// (default 4; ground truth is cached per seed).
	SeedSpread int
	// Client is the HTTP client (default: 60s timeout).
	Client *http.Client
	// Logf receives progress lines (default: drop).
	Logf func(format string, args ...any)
}

// Run executes the load: Sessions oracle-backed drivers, at most
// Concurrency in flight, each completing Iterations full iterations
// with every question answered, then scrapes shard placement and
// router metrics into a Report.
func Run(opts Options) (*Report, error) {
	if opts.Sessions <= 0 {
		opts.Sessions = 1
	}
	if opts.Concurrency <= 0 || opts.Concurrency > opts.Sessions {
		opts.Concurrency = opts.Sessions
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 2
	}
	if opts.SeedSpread <= 0 {
		opts.SeedSpread = 4
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	spec := opts.Spec
	if spec.Dataset == "" {
		spec.Dataset = "D1"
	}
	if spec.Scale == 0 {
		spec.Scale = 0.002
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}

	truths := NewTruthCache()
	stats := NewStats()
	start := time.Now()
	sem := make(chan struct{}, opts.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < opts.Sessions; i++ {
		sp := spec
		sp.ID = fmt.Sprintf("lg-%04d", i)
		sp.Seed = spec.Seed + int64(i%opts.SeedSpread)
		gt, err := truths.Truth(sp.Dataset, sp.Scale, sp.Seed)
		if err != nil {
			return nil, err
		}
		d := &Driver{
			Client:   opts.Client,
			Base:     opts.BaseURL,
			Spec:     sp,
			Policy:   NewPolicy(gt, sp.Seed),
			Iters:    opts.Iterations,
			Stats:    stats,
			Tolerant: true,
			Logf:     opts.Logf,
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := d.Run(); err != nil {
				stats.fail()
				opts.Logf("loadgen: session %s: %v", d.Spec.ID, err)
			} else {
				stats.complete()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	opts.Logf("loadgen: %d sessions done in %v", opts.Sessions, elapsed.Round(time.Millisecond))

	rep := buildReport(opts, stats, elapsed)
	return rep, nil
}
