package loadgen

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPercentileNearestRank(t *testing.T) {
	vs := []float64{9, 1, 7, 3, 5} // unsorted on purpose
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{50, 5},
		{90, 9},
		{99, 9},
		{0, 1},
	} {
		if got := Percentile(vs, tc.p); got != tc.want {
			t.Errorf("P%g = %g, want %g", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty sample P50 = %g, want 0", got)
	}

	// Non-multiple-of-5 sample counts distinguish nearest-rank ceil from
	// the old rounding formula: with n=13, p10 → ceil(1.3)=2nd element,
	// but round(1.3)=1st; p50 → ceil(6.5)=7th, but round(6.5)=7th only
	// by luck of the .5 — p42 → ceil(5.46)=6th vs round(5.46)=5th.
	thirteen := make([]float64, 13)
	for i := range thirteen {
		thirteen[i] = float64(i + 1) // 1..13, element k is the k-th rank
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{
		{10, 2},  // ceil(1.3) = 2; rounding gave 1
		{42, 6},  // ceil(5.46) = 6; rounding gave 5
		{50, 7},  // ceil(6.5) = 7
		{99, 13}, // ceil(12.87) = 13
	} {
		if got := Percentile(thirteen, tc.p); got != tc.want {
			t.Errorf("n=13 P%g = %g, want %g", tc.p, got, tc.want)
		}
	}
	// n=7: p50 must be the 4th element (ceil(3.5)=4).
	seven := []float64{10, 20, 30, 40, 50, 60, 70}
	if got := Percentile(seven, 50); got != 40 {
		t.Errorf("n=7 P50 = %g, want 40", got)
	}
}

// TestFingerprintBitExact: fingerprints must separate states that
// differ in the last ulp or in the sign of zero — the resolution the
// chaos prefix comparisons rely on.
func TestFingerprintBitExact(t *testing.T) {
	var a, b StateJSON
	a.Truth, b.Truth = 0.1, 0.1
	a.Chart.Labels = []string{"x"}
	b.Chart.Labels = []string{"x"}
	a.Chart.Values = []float64{1.0}
	b.Chart.Values = []float64{1.0}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical states fingerprint differently")
	}
	b.Chart.Values[0] = math.Nextafter(1.0, 2.0)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("one-ulp chart difference not detected")
	}
	b.Chart.Values[0] = math.Copysign(0, -1)
	a.Chart.Values[0] = 0
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("sign-of-zero difference not detected")
	}
}

func TestScrapeMetrics(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte(strings.Join([]string{
			"# HELP visclean_router_requests_total requests",
			"# TYPE visclean_router_requests_total counter",
			"visclean_router_requests_total 41",
			`visclean_pipeline_questions_total{kind="T"} 3`,
			`visclean_pipeline_questions_total{kind="A"} 4`,
			"not a metric line",
			"", // blank
		}, "\n")))
	}))
	defer ts.Close()
	fams, err := ScrapeMetrics(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := fams["visclean_router_requests_total"]; got != 41 {
		t.Errorf("requests_total = %g, want 41", got)
	}
	// Labelled series collapse into their family, summed.
	if got := fams["visclean_pipeline_questions_total"]; got != 7 {
		t.Errorf("questions_total = %g, want 7 (labels summed)", got)
	}
}
