package impute

import (
	"math"
	"testing"

	"visclean/internal/dataset"
)

func seedbTable(t testing.TB) *dataset.Table {
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Title", Kind: dataset.String},
		{Name: "Venue", Kind: dataset.String},
		{Name: "Citations", Kind: dataset.Float},
	})
	rows := [][]dataset.Value{
		{dataset.Str("SeeDB"), dataset.Str("VLDB"), dataset.Null(dataset.Float)},
		{dataset.Str("SeeDB"), dataset.Str("VLDB"), dataset.Num(55)},
		{dataset.Str("SeeDB"), dataset.Str("VLDB 2014"), dataset.Num(57)},
		{dataset.Str("Elaps"), dataset.Str("ICDE"), dataset.Num(42)},
		{dataset.Str("KuaFu"), dataset.Str("ICDE"), dataset.Num(15)},
	}
	for _, r := range rows {
		tbl.MustAppend(r)
	}
	return tbl
}

func TestSuggestForMissing(t *testing.T) {
	tbl := seedbTable(t)
	im := New(tbl, 2, 2)
	s, ok := im.SuggestFor(tbl.ID(0))
	if !ok {
		t.Fatal("no suggestion")
	}
	// Nearest two records are the other SeeDB rows -> mean(55, 57) = 56.
	if math.Abs(s.Value-56) > 1e-9 {
		t.Fatalf("suggested %v, want 56", s.Value)
	}
	if len(s.Neighbors) != 2 {
		t.Fatalf("neighbors = %v", s.Neighbors)
	}
	if s.Neighbors[0] != tbl.ID(1) && s.Neighbors[0] != tbl.ID(2) {
		t.Fatalf("unexpected nearest neighbor %v", s.Neighbors[0])
	}
}

func TestSuggestExcludesOwnYColumn(t *testing.T) {
	// A present-but-wrong Y value must not affect neighbour choice: two
	// otherwise-identical records must be nearest regardless of Y.
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "Name", Kind: dataset.String},
		{Name: "Y", Kind: dataset.Float},
	})
	a := tbl.MustAppend([]dataset.Value{dataset.Str("alpha beta"), dataset.Num(99999)})
	tbl.MustAppend([]dataset.Value{dataset.Str("alpha beta"), dataset.Num(10)})
	tbl.MustAppend([]dataset.Value{dataset.Str("gamma delta"), dataset.Num(99999)})
	im := New(tbl, 1, 1)
	s, ok := im.SuggestFor(a)
	if !ok {
		t.Fatal("no suggestion")
	}
	if s.Value != 10 {
		t.Fatalf("suggestion = %v, want 10 (same-name neighbour)", s.Value)
	}
}

func TestSuggestAllMissing(t *testing.T) {
	tbl := seedbTable(t)
	im := New(tbl, 2, 5)
	all := im.SuggestAllMissing()
	if len(all) != 1 || all[0].ID != tbl.ID(0) {
		t.Fatalf("suggestions = %v", all)
	}
}

func TestSuggestForUnknownTuple(t *testing.T) {
	tbl := seedbTable(t)
	im := New(tbl, 2, 5)
	if _, ok := im.SuggestFor(dataset.TupleID(777)); ok {
		t.Fatal("unknown tuple should not produce a suggestion")
	}
}

func TestSuggestNoUsableNeighbors(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "N", Kind: dataset.String},
		{Name: "Y", Kind: dataset.Float},
	})
	a := tbl.MustAppend([]dataset.Value{dataset.Str("only"), dataset.Null(dataset.Float)})
	im := New(tbl, 1, 5)
	if _, ok := im.SuggestFor(a); ok {
		t.Fatal("suggestion from zero neighbours")
	}
	// All-null column.
	tbl.MustAppend([]dataset.Value{dataset.Str("other"), dataset.Null(dataset.Float)})
	im2 := New(tbl, 1, 5)
	if _, ok := im2.SuggestFor(a); ok {
		t.Fatal("suggestion despite all-null Y column")
	}
}

func TestDefaultK(t *testing.T) {
	tbl := seedbTable(t)
	im := New(tbl, 2, 0)
	if im.k != DefaultK {
		t.Fatalf("k = %d, want %d", im.k, DefaultK)
	}
	// Fewer neighbours than k: uses all of them.
	s, ok := im.SuggestFor(tbl.ID(0))
	if !ok || len(s.Neighbors) != 4 {
		t.Fatalf("suggestion = %+v ok=%v", s, ok)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	tbl := dataset.NewTable(dataset.Schema{
		{Name: "N", Kind: dataset.String},
		{Name: "Y", Kind: dataset.Float},
	})
	a := tbl.MustAppend([]dataset.Value{dataset.Str("x"), dataset.Null(dataset.Float)})
	tbl.MustAppend([]dataset.Value{dataset.Str("x"), dataset.Num(1)})
	tbl.MustAppend([]dataset.Value{dataset.Str("x"), dataset.Num(3)})
	im := New(tbl, 1, 1)
	s1, _ := im.SuggestFor(a)
	s2, _ := im.SuggestFor(a)
	if s1.Value != s2.Value || s1.Value != 1 {
		t.Fatalf("tie break nondeterministic or wrong: %v vs %v", s1.Value, s2.Value)
	}
}
