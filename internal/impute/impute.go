// Package impute implements the paper's missing-value repair generator
// (§IV, Q_M): for a tuple missing its Y value, find the k most similar
// tuples — similarity being the token Jaccard of the concatenation of all
// attributes — and suggest the mean of their Y values.
package impute

import (
	"sort"

	"visclean/internal/dataset"
	"visclean/internal/stringsim"
)

// DefaultK is the paper's neighbourhood size (k=5).
const DefaultK = 5

// Suggestion is a proposed repair for one tuple's Y cell.
type Suggestion struct {
	ID    dataset.TupleID
	Value float64
	// Neighbors are the tuple ids the value was averaged from, most
	// similar first; the GUI shows them as context.
	Neighbors []dataset.TupleID
}

// Imputer indexes a table for kNN value suggestion. Build one per
// iteration (token sets are cached per row).
type Imputer struct {
	table  *dataset.Table
	yCol   int
	k      int
	tokens []map[string]struct{}
}

// New builds an imputer over column yCol of t with neighbourhood size k
// (k <= 0 selects DefaultK). The concatenated-row token sets exclude the
// Y column itself so a candidate's own (possibly wrong) Y value does not
// influence which neighbours are chosen — required for outlier repair
// where Y is present but suspect.
func New(t *dataset.Table, yCol, k int) *Imputer {
	if k <= 0 {
		k = DefaultK
	}
	im := &Imputer{table: t, yCol: yCol, k: k}
	im.tokens = make([]map[string]struct{}, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		im.tokens[i] = rowTokens(t, i, yCol)
	}
	return im
}

func rowTokens(t *dataset.Table, row, skipCol int) map[string]struct{} {
	set := make(map[string]struct{})
	for c := 0; c < t.NumCols(); c++ {
		if c == skipCol {
			continue
		}
		for _, tok := range stringsim.Tokenize(t.Get(row, c).String()) {
			set[tok] = struct{}{}
		}
	}
	return set
}

// SuggestFor computes the repair suggestion for one tuple id. ok is false
// when the tuple does not exist or no neighbour has a usable Y value.
func (im *Imputer) SuggestFor(id dataset.TupleID) (Suggestion, bool) {
	row, ok := im.table.RowIndex(id)
	if !ok {
		return Suggestion{}, false
	}
	type scored struct {
		row int
		sim float64
	}
	var cands []scored
	for i := 0; i < im.table.NumRows(); i++ {
		if i == row {
			continue
		}
		if _, hasY := im.table.Get(i, im.yCol).Float(); !hasY {
			continue
		}
		cands = append(cands, scored{row: i, sim: stringsim.JaccardSets(im.tokens[row], im.tokens[i])})
	}
	if len(cands) == 0 {
		return Suggestion{}, false
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].sim != cands[b].sim {
			return cands[a].sim > cands[b].sim
		}
		return im.table.ID(cands[a].row) < im.table.ID(cands[b].row)
	})
	k := im.k
	if k > len(cands) {
		k = len(cands)
	}
	sum := 0.0
	s := Suggestion{ID: id}
	for _, c := range cands[:k] {
		y, _ := im.table.Get(c.row, im.yCol).Float()
		sum += y
		s.Neighbors = append(s.Neighbors, im.table.ID(c.row))
	}
	s.Value = sum / float64(k)
	return s, true
}

// SuggestAllMissing produces suggestions for every tuple whose Y cell is
// null — the M-question set Q_M. Results are ordered by tuple id.
func (im *Imputer) SuggestAllMissing() []Suggestion {
	var out []Suggestion
	for _, id := range im.table.MissingIDs(im.yCol) {
		if s, ok := im.SuggestFor(id); ok {
			out = append(out, s)
		}
	}
	return out
}
