// Package impute implements the paper's missing-value repair generator
// (§IV, Q_M): for a tuple missing its Y value, find the k most similar
// tuples — similarity being the token Jaccard of the concatenation of all
// attributes — and suggest the mean of their Y values.
package impute

import (
	"visclean/internal/dataset"
	"visclean/internal/knn"
)

// DefaultK is the paper's neighbourhood size (k=5).
const DefaultK = 5

// Suggestion is a proposed repair for one tuple's Y cell.
type Suggestion struct {
	ID    dataset.TupleID
	Value float64
	// Neighbors are the tuple ids the value was averaged from, most
	// similar first; the GUI shows them as context.
	Neighbors []dataset.TupleID
}

// Imputer ranks neighbours through a shared kNN index for value
// suggestion. Build one per iteration; the token index itself can be
// reused across iterations (see knn.Index).
type Imputer struct {
	table *dataset.Table
	yCol  int
	k     int
	ix    *knn.Index
}

// New builds an imputer over column yCol of t with neighbourhood size k
// (k <= 0 selects DefaultK), constructing a private kNN index. The
// concatenated-row token sets exclude the Y column itself so a
// candidate's own (possibly wrong) Y value does not influence which
// neighbours are chosen — required for outlier repair where Y is present
// but suspect.
func New(t *dataset.Table, yCol, k int) *Imputer {
	return NewWithIndex(knn.NewIndex(t, yCol), k)
}

// NewWithIndex builds an imputer over a prebuilt kNN index (the Y column
// is the index's skip column), sharing the tokenization cost with other
// consumers of the same index.
func NewWithIndex(ix *knn.Index, k int) *Imputer {
	if k <= 0 {
		k = DefaultK
	}
	return &Imputer{table: ix.Table(), yCol: ix.SkipCol(), k: k, ix: ix}
}

// SuggestFor computes the repair suggestion for one tuple id. ok is false
// when the tuple does not exist or no neighbour has a usable Y value.
func (im *Imputer) SuggestFor(id dataset.TupleID) (Suggestion, bool) {
	row, ok := im.table.RowIndex(id)
	if !ok {
		return Suggestion{}, false
	}
	neighbors := im.ix.Nearest(row, im.k, func(i int) bool {
		_, hasY := im.table.Get(i, im.yCol).Float()
		return hasY
	})
	if len(neighbors) == 0 {
		return Suggestion{}, false
	}
	sum := 0.0
	s := Suggestion{ID: id}
	for _, n := range neighbors {
		y, _ := im.table.Get(n.Row, im.yCol).Float()
		sum += y
		s.Neighbors = append(s.Neighbors, n.ID)
	}
	s.Value = sum / float64(len(neighbors))
	return s, true
}

// SuggestAllMissing produces suggestions for every tuple whose Y cell is
// null — the M-question set Q_M. Results are ordered by tuple id.
func (im *Imputer) SuggestAllMissing() []Suggestion {
	var out []Suggestion
	for _, id := range im.table.MissingIDs(im.yCol) {
		if s, ok := im.SuggestFor(id); ok {
			out = append(out, s)
		}
	}
	return out
}
