package benefit

import (
	"math"
	"testing"

	"visclean/internal/dataset"
	"visclean/internal/distance"
	"visclean/internal/em"
	"visclean/internal/erg"
	"visclean/internal/vis"
)

func chart(ys ...float64) *vis.Data {
	d := &vis.Data{Type: vis.Bar}
	for i, y := range ys {
		d.Points = append(d.Points, vis.Point{Label: string(rune('A' + i)), Y: y})
	}
	return d
}

// fakeWorld prices hypotheses from a fixed lookup of resulting charts.
type fakeWorld struct {
	base  *vis.Data
	after map[HypKind]*vis.Data
}

func (w *fakeWorld) estimator() *Estimator {
	return &Estimator{
		Dist: distance.EMD,
		Base: w.base,
		Hypothetical: func(h Hypothesis) *vis.Data {
			return w.after[h.Kind]
		},
	}
}

func TestTBenefitWeighting(t *testing.T) {
	base := chart(1, 1)
	confirmVis := chart(3, 1) // some distance dY > 0
	splitVis := base.Clone()  // no change: dN = 0
	w := &fakeWorld{base: base, after: map[HypKind]*vis.Data{
		TConfirm: confirmVis,
		TSplit:   splitVis,
	}}
	e := w.estimator()
	pair := em.MakePair(1, 2)
	dY := distance.EMD(base, confirmVis)
	if dY <= 0 {
		t.Fatal("test setup: dY must be positive")
	}
	for _, pY := range []float64{0, 0.25, 0.5, 1} {
		got := e.TBenefit(pair, pY)
		want := pY * dY
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("TBenefit(p=%v) = %v, want %v", pY, got, want)
		}
	}
}

func TestABenefitRejectIsFree(t *testing.T) {
	base := chart(2, 1)
	w := &fakeWorld{base: base, after: map[HypKind]*vis.Data{
		AApprove: chart(3, 0),
	}}
	e := w.estimator()
	dY := distance.EMD(base, w.after[AApprove])
	if got := e.ABenefit("Venue", "VLDB", "Very Large Data Bases", 0.8); math.Abs(got-0.8*dY) > 1e-12 {
		t.Fatalf("ABenefit = %v, want %v", got, 0.8*dY)
	}
	if got := e.ABenefit("Venue", "x", "y", 0); got != 0 {
		t.Fatalf("zero-probability A benefit = %v", got)
	}
}

func TestMAndOBenefitAreUnweighted(t *testing.T) {
	base := chart(1, 2)
	after := chart(5, 2)
	w := &fakeWorld{base: base, after: map[HypKind]*vis.Data{
		MImpute: after,
		ORepair: after,
	}}
	e := w.estimator()
	d := distance.EMD(base, after)
	if got := e.MBenefit(7, 55); math.Abs(got-d) > 1e-12 {
		t.Fatalf("MBenefit = %v, want %v", got, d)
	}
	if got := e.OBenefit(2, 174); math.Abs(got-d) > 1e-12 {
		t.Fatalf("OBenefit = %v, want %v", got, d)
	}
}

func TestNilHypotheticalPricesZero(t *testing.T) {
	e := &Estimator{
		Dist:         distance.EMD,
		Base:         chart(1, 2),
		Hypothetical: func(Hypothesis) *vis.Data { return nil },
	}
	if got := e.TBenefit(em.MakePair(1, 2), 0.5); got != 0 {
		t.Fatalf("nil hypothetical priced %v", got)
	}
}

func TestAnnotateFillsGraph(t *testing.T) {
	base := chart(1, 1, 1)
	afterAny := chart(4, 1, 1)
	e := &Estimator{
		Dist: distance.EMD,
		Base: base,
		Hypothetical: func(h Hypothesis) *vis.Data {
			if h.Kind == TSplit {
				return base.Clone()
			}
			return afterAny
		},
	}
	g := erg.MustNew([]dataset.TupleID{1, 2, 3})
	if err := g.AddEdge(erg.Edge{A: 1, B: 2, HasT: true, PT: 0.6, HasA: true, PA: 0.5, AV1: "a", AV2: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(erg.Edge{A: 2, B: 3, HasT: true, PT: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRepair(erg.VertexRepair{ID: 3, Kind: erg.Missing, Suggested: 10}); err != nil {
		t.Fatal(err)
	}
	evals := e.Annotate(g)
	// Edge 0: T (2 evals) + A (1 eval); edge 1: T (2); repair: 1 -> 6.
	if evals != 6 {
		t.Fatalf("evals = %d, want 6", evals)
	}
	d := distance.EMD(base, afterAny)
	wantE0 := 0.6*d + 0.5*d
	if got := g.Edge(0).Benefit; math.Abs(got-wantE0) > 1e-12 {
		t.Fatalf("edge 0 benefit = %v, want %v", got, wantE0)
	}
	if got := g.Edge(1).Benefit; math.Abs(got-0.4*d) > 1e-12 {
		t.Fatalf("edge 1 benefit = %v, want %v", got, 0.4*d)
	}
	if got := g.Repair(3).Benefit; math.Abs(got-d) > 1e-12 {
		t.Fatalf("repair benefit = %v, want %v", got, d)
	}
}

func TestExample5Accounting(t *testing.T) {
	// Paper Example 5: edge (t1,t2) with B_T=0.1, B_A=0.2 and B_O=0.2 on
	// t2 gives sort weight 0.5. We verify the DESIGN.md accounting: edge
	// Benefit = 0.3, vertex folds in for sorting only.
	g := erg.MustNew([]dataset.TupleID{1, 2})
	if err := g.AddEdge(erg.Edge{A: 1, B: 2, Benefit: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRepair(erg.VertexRepair{ID: 2, Kind: erg.Outlier, Benefit: 0.2}); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeSortWeight(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("sort weight = %v, want 0.5 (Example 5)", got)
	}
	if got := g.SubgraphBenefit([]dataset.TupleID{1, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CQG benefit = %v, want 0.5", got)
	}
}

func TestMemoizationPricesUniqueHypothesesOnce(t *testing.T) {
	base := chart(1, 2)
	var calls int
	e := &Estimator{
		Dist: distance.EMD,
		Base: base,
		Hypothetical: func(h Hypothesis) *vis.Data {
			calls++
			return chart(3, 2)
		},
	}
	// Symmetric forms canonicalize to one memo slot: (1,2) vs (2,1)
	// pairs, ("a","b") vs ("b","a") value pairs.
	b1 := e.TBenefit(em.Pair{A: 1, B: 2}, 0.5)
	b2 := e.TBenefit(em.Pair{A: 2, B: 1}, 0.5)
	if b1 != b2 {
		t.Fatalf("symmetric T pairs priced differently: %v vs %v", b1, b2)
	}
	a1 := e.ABenefit("Venue", "a", "b", 1)
	a2 := e.ABenefit("Venue", "b", "a", 1)
	if a1 != a2 {
		t.Fatalf("symmetric A pairs priced differently: %v vs %v", a1, a2)
	}
	e.MBenefit(7, 10)
	e.MBenefit(7, 10) // repeat: memo hit
	// Unique hypotheses: TConfirm(1,2), TSplit(1,2), AApprove(a,b),
	// MImpute(7,10) -> 4 evaluations, regardless of the 7 calls above.
	if calls != 4 || e.Evals() != 4 {
		t.Fatalf("Hypothetical called %d times, Evals() = %d; want 4", calls, e.Evals())
	}
	// A distinct hypothesis is a miss.
	e.MBenefit(7, 11)
	if e.Evals() != 5 {
		t.Fatalf("Evals() = %d after new hypothesis, want 5", e.Evals())
	}
}

func TestAnnotateWorkerCountInvariance(t *testing.T) {
	// Annotate at Workers=1 and Workers=8 must produce bit-identical
	// benefits (the index-write rule); the hypothesis set priced is the
	// same, so Evals matches too.
	build := func(workers int) (*erg.Graph, int) {
		base := chart(1, 1, 1, 1)
		e := &Estimator{
			Dist:    distance.EMD,
			Base:    base,
			Workers: workers,
			Hypothetical: func(h Hypothesis) *vis.Data {
				// A distinct, deterministic chart per hypothesis.
				return chart(float64(h.Kind)+1, float64(h.ID), h.Value, float64(h.Pair.A)+float64(h.Pair.B))
			},
		}
		g := erg.MustNew([]dataset.TupleID{1, 2, 3, 4, 5})
		for i := dataset.TupleID(1); i < 5; i++ {
			if err := g.AddEdge(erg.Edge{A: i, B: i + 1, HasT: true, PT: 0.5, HasA: true, PA: 0.4, AV1: "a", AV2: "b"}); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.SetRepair(erg.VertexRepair{ID: 2, Kind: erg.Outlier, Current: 9, Suggested: 3}); err != nil {
			t.Fatal(err)
		}
		if err := g.SetRepair(erg.VertexRepair{ID: 4, Kind: erg.Missing, Suggested: 7}); err != nil {
			t.Fatal(err)
		}
		return g, e.Annotate(g)
	}
	g1, n1 := build(1)
	g8, n8 := build(8)
	if n1 != n8 {
		t.Fatalf("eval counts differ: %d vs %d", n1, n8)
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(i).Benefit != g8.Edge(i).Benefit {
			t.Fatalf("edge %d benefit differs: %v vs %v", i, g1.Edge(i).Benefit, g8.Edge(i).Benefit)
		}
	}
	r1, r8 := g1.Repairs(), g8.Repairs()
	for i := range r1 {
		if r1[i].Benefit != r8[i].Benefit {
			t.Fatalf("repair %d benefit differs: %v vs %v", i, r1[i].Benefit, r8[i].Benefit)
		}
	}
}
