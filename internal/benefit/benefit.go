// Package benefit implements the estimation-based benefit model of §V-A
// (Definition 5.1): the expected benefit of a cleaning question is the
// probability-weighted visualization distance between the current chart
// and the chart that would result from each possible user answer,
//
//	B(G) = Σ_edges (P^Y·dist^Y + P^N·dist^N)  (Eq. 5)
//
// specialized per question type as B_T (Eq. 6), B_A = P^Y·dist^Y,
// B_M = dist^Y and B_O = dist^Y.
//
// The estimator is decoupled from the cleaning pipeline through the
// Hypothetical callback: the pipeline knows how to derive the chart that
// a hypothetical answer would produce; this package only prices it.
package benefit

import (
	"sync"
	"sync/atomic"

	"visclean/internal/dataset"
	"visclean/internal/distance"
	"visclean/internal/em"
	"visclean/internal/erg"
	"visclean/internal/par"
	"visclean/internal/vis"
)

// HypKind enumerates the hypothetical user answers the model prices.
type HypKind int

const (
	// TConfirm: the user confirms a tuple pair as the same entity.
	TConfirm HypKind = iota
	// TSplit: the user splits a tuple pair (not the same entity).
	TSplit
	// AApprove: the user approves an attribute-value transformation.
	AApprove
	// MImpute: the user accepts a missing-value imputation.
	MImpute
	// ORepair: the user accepts an outlier repair.
	ORepair
)

// String names the hypothesis kind for logs and debug output.
func (k HypKind) String() string {
	switch k {
	case TConfirm:
		return "T-confirm"
	case TSplit:
		return "T-split"
	case AApprove:
		return "A-approve"
	case MImpute:
		return "M-impute"
	case ORepair:
		return "O-repair"
	default:
		return "unknown"
	}
}

// Hypothesis is one hypothetical answer. The fields used depend on Kind:
// Pair for T questions, Column/V1/V2 for A questions, ID/Value for M/O.
type Hypothesis struct {
	Kind   HypKind
	Pair   em.Pair
	Column string
	V1     string
	V2     string
	ID     dataset.TupleID
	Value  float64
}

// View is one visualization panel of a multi-view session: its current
// chart and its weight in the cross-view benefit aggregation.
type View struct {
	Base   *vis.Data
	Weight float64
}

// Estimator prices questions. Base is the current visualization;
// Hypothetical derives the visualization under a hypothetical answer
// (returning nil means the answer is inapplicable and prices as zero).
//
// Workers bounds the fan-out of Annotate: < 1 selects GOMAXPROCS, 1 is
// strictly sequential. When Workers > 1 the Hypothetical callback must
// be safe for concurrent calls (the pipeline freezes its standardizers
// and prices M/O repairs through cell overrides to guarantee this).
//
// Priced hypotheses are memoized for the estimator's lifetime, keyed by
// canonical Hypothesis: within one iteration a hypothesis is a pure
// function of session state, so the same question appearing on several
// edges (an A-question's value pair typically does) is priced once. An
// estimator is therefore valid for exactly one iteration — session
// state changes invalidate the cache, so build a fresh one per
// iteration.
type Estimator struct {
	Dist         distance.Func
	Base         *vis.Data
	Hypothetical func(h Hypothesis) *vis.Data
	Workers      int

	// Views and HypotheticalAll extend the estimator to a multi-view
	// session: when Views is non-empty, a hypothesis is priced as the
	// weighted sum Σ_i Weight_i · Dist(Views[i].Base, charts[i]) with
	// charts = HypotheticalAll(h), accumulated in view registration
	// order so the float sum is deterministic at every worker count. A
	// nil charts slice means the hypothesis is inapplicable (prices as
	// zero, like a nil Hypothetical chart); a nil element zeroes only
	// that view's term. Base and Hypothetical are ignored while Views is
	// set; single-view callers leave Views nil and keep the exact
	// historical pricing path.
	Views           []View
	HypotheticalAll func(h Hypothesis) []*vis.Data

	// Pricer, when set, is tried before the full Hypothetical+Dist path:
	// it returns the price of a hypothesis directly (typically via
	// incremental delta evaluation), with ok=false meaning "cannot price
	// this one incrementally" — the estimator then falls back to the full
	// rebuild. A Pricer must be bit-identical to the full path and, like
	// Hypothetical, safe for concurrent calls when Workers > 1.
	Pricer func(h Hypothesis) (float64, bool)

	mu    sync.Mutex
	memo  map[Hypothesis]*memoEntry
	evals atomic.Int64 // unique Hypothetical invocations (cache misses)
	calls atomic.Int64 // total dist() requests (hits = calls − evals)
	// pricerOK / pricerMiss count Pricer outcomes: accepted incremental
	// prices vs. declines that fell back to the full rebuild. Both stay
	// zero when Pricer is nil.
	pricerOK   atomic.Int64
	pricerMiss atomic.Int64
}

// Stats is an estimator's work accounting: how many prices were
// requested, how many unique hypotheses were actually evaluated (the
// rest were memo hits), and how the incremental pricer fared on the
// evaluated ones. All four are deterministic for a given session state —
// they do not depend on the worker count.
type Stats struct {
	// Calls counts dist() requests across all edges and repairs.
	Calls int
	// Evals counts unique hypotheses evaluated (memo cache misses).
	Evals int
	// MemoHits is Calls − Evals: prices served from the memo.
	MemoHits int
	// PricerAccepts counts hypotheses the incremental Pricer priced.
	PricerAccepts int
	// PricerFallbacks counts hypotheses the Pricer declined (posting or
	// lookup miss), priced by the full view-rebuild path instead.
	PricerFallbacks int
}

// Stats reports the estimator's accumulated work accounting.
func (e *Estimator) Stats() Stats {
	calls := int(e.calls.Load())
	evals := int(e.evals.Load())
	return Stats{
		Calls:           calls,
		Evals:           evals,
		MemoHits:        calls - evals,
		PricerAccepts:   int(e.pricerOK.Load()),
		PricerFallbacks: int(e.pricerMiss.Load()),
	}
}

// memoEntry is one memoized price. The sync.Once guarantees a single
// Hypothetical evaluation per canonical hypothesis even when several
// workers request it concurrently; losers block until the value is set.
type memoEntry struct {
	once sync.Once
	val  float64
}

// canonicalize normalizes the order-insensitive fields so symmetric
// hypotheses share one memo slot: the tuple pair of a T-question and the
// value pair of an A-question (Standardizer.Approve is a symmetric
// union, so Approve(v1,v2) and Approve(v2,v1) price identically).
func canonicalize(h Hypothesis) Hypothesis {
	switch h.Kind {
	case TConfirm, TSplit:
		h.Pair = em.MakePair(h.Pair.A, h.Pair.B)
	case AApprove:
		if h.V1 > h.V2 {
			h.V1, h.V2 = h.V2, h.V1
		}
	}
	return h
}

// dist prices one hypothesis: the visualization distance the answer
// would cause. Bigger distance = dirtier chart fixed = more benefit.
// Prices are memoized; see Estimator.
func (e *Estimator) dist(h Hypothesis) float64 {
	h = canonicalize(h)
	e.calls.Add(1)
	e.mu.Lock()
	if e.memo == nil {
		e.memo = make(map[Hypothesis]*memoEntry)
	}
	ent := e.memo[h]
	if ent == nil {
		ent = &memoEntry{}
		e.memo[h] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		e.evals.Add(1)
		ent.val = e.rawDist(h)
	})
	return ent.val
}

func (e *Estimator) rawDist(h Hypothesis) float64 {
	if e.Pricer != nil {
		if v, ok := e.Pricer(h); ok {
			e.pricerOK.Add(1)
			return v
		}
		e.pricerMiss.Add(1)
	}
	if len(e.Views) > 0 {
		charts := e.HypotheticalAll(h)
		if charts == nil {
			return 0
		}
		total := 0.0
		for i, v := range e.Views {
			if i >= len(charts) || charts[i] == nil {
				continue
			}
			total += v.Weight * e.Dist(v.Base, charts[i])
		}
		return total
	}
	after := e.Hypothetical(h)
	if after == nil {
		return 0
	}
	return e.Dist(e.Base, after)
}

// Evals reports the number of hypothetical visualizations actually
// derived so far (memo cache misses). The experiment harness reports
// this as benefit-model work; it is deterministic — the set of unique
// hypotheses priced does not depend on the worker count.
func (e *Estimator) Evals() int { return int(e.evals.Load()) }

// TBenefit computes Eq. 6 for a T-question: pY·dist^Y + (1−pY)·dist^N,
// where pY is the current model's matching probability.
func (e *Estimator) TBenefit(pair em.Pair, pY float64) float64 {
	distY := e.dist(Hypothesis{Kind: TConfirm, Pair: pair})
	distN := e.dist(Hypothesis{Kind: TSplit, Pair: pair})
	return pY*distY + (1-pY)*distN
}

// ABenefit computes the A-question benefit: pY·dist^Y; a rejected
// A-question carries no visualization benefit (§V-A (2) case II).
func (e *Estimator) ABenefit(column, v1, v2 string, pY float64) float64 {
	return pY * e.dist(Hypothesis{Kind: AApprove, Column: column, V1: v1, V2: v2})
}

// MBenefit computes the M-question benefit: dist^Y of the imputation.
func (e *Estimator) MBenefit(id dataset.TupleID, value float64) float64 {
	return e.dist(Hypothesis{Kind: MImpute, ID: id, Value: value})
}

// OBenefit computes the O-question benefit: dist^Y of the repair.
func (e *Estimator) OBenefit(id dataset.TupleID, value float64) float64 {
	return e.dist(Hypothesis{Kind: ORepair, ID: id, Value: value})
}

// EdgeBenefit prices one ERG edge: B_T (if the edge carries a T-question)
// plus B_A (if it carries an A-question).
func (e *Estimator) EdgeBenefit(edge *erg.Edge) float64 {
	total := 0.0
	if edge.HasT {
		total += e.TBenefit(em.MakePair(edge.A, edge.B), edge.PT)
	}
	if edge.HasA {
		total += e.ABenefit(edge.ACol, edge.AV1, edge.AV2, edge.PA)
	}
	return total
}

// RepairBenefit prices one vertex repair: B_M or B_O.
func (e *Estimator) RepairBenefit(r *erg.VertexRepair) float64 {
	if r.Kind == erg.Missing {
		return e.MBenefit(r.ID, r.Suggested)
	}
	return e.OBenefit(r.ID, r.Suggested)
}

// Annotate fills the Benefit fields of every edge and vertex repair of
// the ERG, making it ready for CQG selection, fanning the per-edge and
// per-repair pricing out across Workers goroutines. Each work item
// writes only its own edge's (or repair's) Benefit field — the
// index-write rule — so the annotated ERG is bit-identical to a
// sequential run regardless of the worker count. It returns the number
// of hypothetical visualizations evaluated (the experiment harness
// reports this as benefit-model work); memoization makes this the count
// of unique hypotheses, not of questions.
func (e *Estimator) Annotate(g *erg.Graph) int {
	before := e.evals.Load()
	nEdges := g.NumEdges()
	repairs := g.Repairs() // ordered by tuple id
	par.ForEachIndex(e.Workers, nEdges+len(repairs), func(i int) {
		if i < nEdges {
			edge := g.Edge(i)
			edge.Benefit = e.EdgeBenefit(edge)
			return
		}
		r := repairs[i-nEdges]
		r.Benefit = e.RepairBenefit(r)
	})
	return int(e.evals.Load() - before)
}
