module visclean

go 1.22
