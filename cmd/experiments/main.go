// Command experiments regenerates every table and figure of the paper's
// evaluation (§VII). Each subcommand prints the measured rows/series;
// EXPERIMENTS.md records these next to the paper's numbers.
//
// Usage:
//
//	experiments [-scale 0.05] [-seed 1] [-workers N] <what>
//
// where <what> is one of:
//
//	tables    Table IV (dataset stats) and Table V (workload)
//	fig10     Exp-1 progression for Q1 (chart snapshots + EMD)
//	fig11     Exp-1 progression for Q7
//	fig12     Exp-1 progression for Q8
//	fig13     Exp-1 EMD curves for representative tasks
//	fig14     Exp-2 selector effectiveness
//	fig15     Exp-2/Figs 15-16 user time (composite vs single)
//	table6    Exp-3 noisy/incomplete input
//	fig17     Exp-4 CQG selection efficiency
//	fig18     Exp-4 per-component machine time
//	all       everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"visclean/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale factor (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "seed")
	repeats := flag.Int("repeats", 3, "repeats for Table VI averages")
	edges17a := flag.Int("fig17-edges", 20000, "ERG edges for Fig 17(a)")
	workers := flag.Int("workers", 0, "benefit/training fan-out per session (0 = GOMAXPROCS, 1 = sequential; results identical at any value)")
	flag.Parse()

	what := flag.Arg(0)
	if what == "" {
		flag.Usage()
		os.Exit(2)
	}
	env := experiments.NewEnv(*scale, *seed)
	env.Workers = *workers
	if err := dispatch(env, what, *repeats, *edges17a); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// Representative tasks per dataset, used where the paper plots one panel
// per dataset.
var representative = []string{"Q1", "Q10", "Q15"}

func dispatch(env *experiments.Env, what string, repeats, edges17a int) error {
	all := what == "all"
	ran := false

	if all || what == "tables" {
		ran = true
		fmt.Println(experiments.TableIV(env))
		tv, err := experiments.TableV(env)
		if err != nil {
			return err
		}
		fmt.Println(tv)
	}
	for _, fig := range []struct {
		name, task string
	}{{"fig10", "Q1"}, {"fig11", "Q7"}, {"fig12", "Q8"}} {
		if all || what == fig.name {
			ran = true
			report, _, err := experiments.Exp1Progress(env, fig.task)
			if err != nil {
				return err
			}
			fmt.Println(report)
		}
	}
	if all || what == "fig13" {
		ran = true
		report, _, err := experiments.Exp1Curves(env, []string{"Q1", "Q2", "Q10", "Q13", "Q15", "Q18"})
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || what == "fig14" {
		ran = true
		report, _, err := experiments.Exp2Effectiveness(env, representative)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || what == "fig15" || what == "fig16" {
		ran = true
		report, _, err := experiments.Exp2UserTime(env, representative)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || what == "table6" {
		ran = true
		report, _, err := experiments.Exp3NoisyInput(env, []string{"Q1", "Q2", "Q3"}, repeats)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || what == "fig17" {
		ran = true
		reportA, _ := experiments.Exp4VaryK(edges17a, []int{5, 10, 15, 20, 25, 30}, 500000, env.Seed)
		fmt.Println(reportA)
		reportB, _ := experiments.Exp4VaryEdges(5, []int{5000, 10000, 20000, 30000, 40000}, 500000, env.Seed)
		fmt.Println(reportB)
	}
	if all || what == "fig18" {
		ran = true
		report, _, err := experiments.Exp4ComponentTime(env, representative)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}
