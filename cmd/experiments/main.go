// Command experiments regenerates every table and figure of the paper's
// evaluation (§VII). Each subcommand prints the measured rows/series;
// EXPERIMENTS.md records these next to the paper's numbers.
//
// Usage:
//
//	experiments [-scale 0.05] [-seed 1] [-workers N] <what>
//
// where <what> is one of:
//
//	tables    Table IV (dataset stats) and Table V (workload)
//	fig10     Exp-1 progression for Q1 (chart snapshots + EMD)
//	fig11     Exp-1 progression for Q7
//	fig12     Exp-1 progression for Q8
//	fig13     Exp-1 EMD curves for representative tasks
//	fig14     Exp-2 selector effectiveness
//	fig15     Exp-2/Figs 15-16 user time (composite vs single)
//	table6    Exp-3 noisy/incomplete input
//	fig17     Exp-4 CQG selection efficiency
//	fig18     Exp-4 per-component machine time
//	all       everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"visclean/internal/experiments"
	"visclean/internal/obs"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale factor (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "seed")
	repeats := flag.Int("repeats", 3, "repeats for Table VI averages")
	edges17a := flag.Int("fig17-edges", 20000, "ERG edges for Fig 17(a)")
	workers := flag.Int("workers", 0, "benefit/training fan-out per session (0 = GOMAXPROCS, 1 = sequential; results identical at any value)")
	metricsOut := flag.String("metrics-out", "", "enable observability and write accumulated metrics as JSON to this file on exit")
	flag.Parse()

	what := flag.Arg(0)
	if what == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *metricsOut != "" {
		obs.SetEnabled(true)
	}
	env := experiments.NewEnv(*scale, *seed)
	env.Workers = *workers
	err := dispatch(env, what, *repeats, *edges17a)
	if *metricsOut != "" {
		if werr := writeMetrics(*metricsOut); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// writeMetrics dumps the obs registry as flat JSON, the input for
// EXPERIMENTS.md's per-phase cost table.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Representative tasks per dataset, used where the paper plots one panel
// per dataset.
var representative = []string{"Q1", "Q10", "Q15"}

func dispatch(env *experiments.Env, what string, repeats, edges17a int) error {
	all := what == "all"
	ran := false

	if all || what == "tables" {
		ran = true
		fmt.Println(experiments.TableIV(env))
		tv, err := experiments.TableV(env)
		if err != nil {
			return err
		}
		fmt.Println(tv)
	}
	for _, fig := range []struct {
		name, task string
	}{{"fig10", "Q1"}, {"fig11", "Q7"}, {"fig12", "Q8"}} {
		if all || what == fig.name {
			ran = true
			report, _, err := experiments.Exp1Progress(env, fig.task)
			if err != nil {
				return err
			}
			fmt.Println(report)
		}
	}
	if all || what == "fig13" {
		ran = true
		report, _, err := experiments.Exp1Curves(env, []string{"Q1", "Q2", "Q10", "Q13", "Q15", "Q18"})
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || what == "fig14" {
		ran = true
		report, _, err := experiments.Exp2Effectiveness(env, representative)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || what == "fig15" || what == "fig16" {
		ran = true
		report, _, err := experiments.Exp2UserTime(env, representative)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || what == "table6" {
		ran = true
		report, _, err := experiments.Exp3NoisyInput(env, []string{"Q1", "Q2", "Q3"}, repeats)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if all || what == "fig17" {
		ran = true
		reportA, _ := experiments.Exp4VaryK(edges17a, []int{5, 10, 15, 20, 25, 30}, 500000, env.Seed)
		fmt.Println(reportA)
		reportB, _ := experiments.Exp4VaryEdges(5, []int{5000, 10000, 20000, 30000, 40000}, 500000, env.Seed)
		fmt.Println(reportB)
	}
	if all || what == "fig18" {
		ran = true
		report, _, err := experiments.Exp4ComponentTime(env, representative)
		if err != nil {
			return err
		}
		fmt.Println(report)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", what)
	}
	return nil
}
