// Command viscleanrouter fronts a cluster of viscleanweb shards with a
// consistent-hash reverse proxy (DESIGN.md §9): session ids hash onto
// a ring over the ready shards, each session's requests are proxied to
// its owner, dead shards are failed over (their sessions restore from
// the shared snapshot directory on the next owner), and membership
// changes trigger snapshot-based session migration.
//
// Usage:
//
//	viscleanweb -addr :8081 -snapshots ./sessions &   # shard 1
//	viscleanweb -addr :8082 -snapshots ./sessions &   # shard 2
//	viscleanrouter -addr :8080 -shards http://127.0.0.1:8081,http://127.0.0.1:8082
//
// Then use the router's address exactly like a single viscleanweb: the
// GUI, /api/session, /metrics. Additional endpoints:
//
//	GET /cluster/state → JSON   shard health, per-shard session counts, ring membership
//	GET /healthz       → 200    router liveness
//	GET /readyz        → 200    at least one shard ready
//
// Pointing every shard at the same -snapshots directory is what makes
// shard death lossless up to the last persisted iteration boundary;
// with disjoint directories, migration still works but a dead shard's
// sessions stay down until it returns.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"visclean/internal/cluster"
	"visclean/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs, e.g. http://127.0.0.1:8081,http://127.0.0.1:8082 (required)")
	replicas := flag.Int("replicas", 64, "virtual nodes per shard on the hash ring")
	healthEvery := flag.Duration("health-interval", time.Second, "shard /readyz probe period")
	rebalanceEvery := flag.Duration("rebalance-interval", 5*time.Second, "periodic rebalance period")
	flag.Parse()

	if err := run(*addr, *shards, *replicas, *healthEvery, *rebalanceEvery); err != nil {
		fmt.Fprintln(os.Stderr, "viscleanrouter:", err)
		os.Exit(1)
	}
}

func run(addr, shards string, replicas int, healthEvery, rebalanceEvery time.Duration) error {
	var list []string
	for _, s := range strings.Split(shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			list = append(list, strings.TrimRight(s, "/"))
		}
	}
	if len(list) == 0 {
		return fmt.Errorf("no shards: pass -shards with at least one base URL")
	}
	obs.SetEnabled(true)
	rt, err := cluster.New(cluster.Config{
		Shards:            list,
		Replicas:          replicas,
		HealthInterval:    healthEvery,
		RebalanceInterval: rebalanceEvery,
		Logf:              log.Printf,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("viscleanrouter: serving on %s over %d shard(s): %s", addr, len(list), strings.Join(list, ", "))

	select {
	case sig := <-stop:
		log.Printf("viscleanrouter: %v — stopping", sig)
		_ = httpSrv.Close()
		return nil
	case err := <-errCh:
		return err
	}
}
