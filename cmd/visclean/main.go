// Command visclean runs an interactive cleaning session: it loads a
// dirty CSV (or generates one of the paper's synthetic datasets), runs a
// VQL visualization query, and iteratively asks composite cleaning
// questions, refreshing the chart after each iteration.
//
// With -interactive the questions are put to you on the terminal (the
// §VI GUI, text edition); otherwise a simulated user answers from the
// generator's ground truth (only available with -dataset).
//
// With -state the session's answer log is snapshotted to a file after
// every iteration, and -resume restores a previous session from that
// file (replaying its answers) before continuing — so a long interactive
// cleaning run survives interruptions.
//
// Usage:
//
//	visclean -dataset D1 -scale 0.02 -budget 15 -k 10
//	visclean -dataset D1 -interactive -budget 5
//	visclean -csv dirty.csv -query "VISUALIZE bar ..." -interactive
//	visclean -dataset D1 -interactive -state run.json          # checkpoint as you go
//	visclean -resume -state run.json -interactive              # pick up where you left off
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"visclean/internal/datagen"
	"visclean/internal/dataset"
	"visclean/internal/erg"
	"visclean/internal/obs"
	"visclean/internal/oracle"
	"visclean/internal/pipeline"
	"visclean/internal/render"
	"visclean/internal/service"
	"visclean/internal/vql"
)

func main() {
	csvPath := flag.String("csv", "", "dirty CSV file to clean (alternative to -dataset)")
	dsName := flag.String("dataset", "", "generate a synthetic dataset: D1, D2 or D3")
	scale := flag.Float64("scale", 0.02, "synthetic dataset scale factor")
	queryStr := flag.String("query", "", "VQL query (default: a representative query for the dataset)")
	budget := flag.Int("budget", 15, "interaction budget (iterations)")
	k := flag.Int("k", 10, "CQG size")
	selector := flag.String("selector", "gss", "CQG selection: gss, gss+, bb, abb, random, single")
	seed := flag.Int64("seed", 1, "random seed")
	interactive := flag.Bool("interactive", false, "ask questions on the terminal instead of simulating")
	statePath := flag.String("state", "", "snapshot file: the session checkpoints here after every iteration")
	resume := flag.Bool("resume", false, "restore the session from -state before continuing")
	metricsOut := flag.String("metrics-out", "", "enable observability and write accumulated metrics as JSON to this file on exit")
	flag.Parse()

	if *metricsOut != "" {
		obs.SetEnabled(true)
	}
	err := run(*csvPath, *dsName, *queryStr, *scale, *budget, *k, *selector, *seed, *interactive,
		*statePath, *resume)
	if *metricsOut != "" {
		if werr := writeMetrics(*metricsOut); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "visclean:", err)
		os.Exit(1)
	}
}

// writeMetrics dumps the obs registry as flat JSON for offline
// inspection of a run's per-phase costs and memo/pricer hit rates.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

var defaultQueries = map[string]string{
	"D1": `VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`,
	"D2": `VISUALIZE bar SELECT Team, SUM(#Points) FROM D2 TRANSFORM GROUP BY Team SORT Y BY DESC LIMIT 10`,
	"D3": `VISUALIZE bar SELECT Publ, AVG(Rating) FROM D3 TRANSFORM GROUP BY Publ SORT Y BY DESC LIMIT 10`,
}

func run(csvPath, dsName, queryStr string, scale float64, budget, k int, selectorName string, seed int64, interactive bool, statePath string, resume bool) error {
	var resumeHistory pipeline.History
	if resume {
		if statePath == "" {
			return fmt.Errorf("-resume requires -state")
		}
		snap, err := service.ReadSnapshotFile(statePath)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		// The snapshot's spec overrides the construction flags: replay is
		// only sound against the exact session the answers came from.
		dsName, scale, seed = snap.Spec.Dataset, snap.Spec.Scale, snap.Spec.Seed
		queryStr, k, selectorName = snap.Spec.Query, snap.Spec.K, snap.Spec.Selector
		csvPath = ""
		resumeHistory = snap.History
		fmt.Printf("Resuming from %s: %d committed iterations, %d answers\n\n",
			statePath, len(snap.History.Iterations), snap.History.NumAnswers())
	}
	if statePath != "" && dsName == "" {
		return fmt.Errorf("-state/-resume require -dataset (a CSV session has no deterministic origin to replay against)")
	}
	sel, err := service.ParseSelector(selectorName)
	if err != nil {
		return err
	}

	var (
		tbl     *dataset.Table
		keyCols []int
		truth   *oracle.GroundTruth
	)
	switch {
	case dsName != "":
		cfg := datagen.Config{Scale: scale, Seed: seed}
		var d *datagen.Dataset
		switch dsName {
		case "D1":
			d = datagen.D1(cfg)
		case "D2":
			d = datagen.D2(cfg)
		case "D3":
			d = datagen.D3(cfg)
		default:
			return fmt.Errorf("unknown dataset %q", dsName)
		}
		tbl, keyCols, truth = d.Dirty, d.KeyColumns, d.Truth
		if queryStr == "" {
			queryStr = defaultQueries[dsName]
		}
	case csvPath != "":
		tbl, err = dataset.LoadCSVFile(csvPath, nil)
		if err != nil {
			return err
		}
		if !interactive {
			return fmt.Errorf("-csv requires -interactive (no ground truth to simulate a user)")
		}
		if queryStr == "" {
			return fmt.Errorf("-csv requires -query")
		}
	default:
		return fmt.Errorf("one of -dataset or -csv is required")
	}

	q, err := vql.Parse(queryStr)
	if err != nil {
		return err
	}

	cfg := pipeline.Config{Selector: sel, K: k, Seed: seed}
	if truth != nil {
		if tv, err := q.Execute(truth.Clean); err == nil {
			cfg.TruthVis = tv
		}
	}
	session, err := pipeline.NewSession(tbl, q, keyCols, cfg)
	if err != nil {
		return err
	}
	if resume {
		if err := session.Replay(resumeHistory); err != nil {
			return err
		}
	}
	// checkpoint snapshots the session after every iteration so a killed
	// run can -resume.
	checkpoint := func() {}
	if statePath != "" {
		spec := service.Spec{
			Dataset: dsName, Scale: scale, Seed: seed,
			Query: queryStr, K: k, Selector: selectorName,
		}.WithDefaults()
		checkpoint = func() {
			snap := service.Snapshot{ID: "cli", Spec: spec, History: session.History()}
			if err := service.WriteSnapshotFile(statePath, snap); err != nil {
				fmt.Fprintln(os.Stderr, "visclean: checkpoint:", err)
			}
		}
		checkpoint()
	}

	var user pipeline.User
	if interactive {
		user = &terminalUser{in: bufio.NewScanner(os.Stdin), table: session.Table()}
	} else {
		user = oracle.New(truth, seed)
	}

	initial, err := session.CurrentVis()
	if err != nil {
		return err
	}
	label := "Initial (dirty)"
	if resume {
		label = "Resumed"
	}
	fmt.Printf("Query: %s\n\n%s visualization:\n%s\n", q.String(), label, render.Chart(initial, 50))
	if d0, err := session.DistToTruth(); err == nil && cfg.TruthVis != nil {
		fmt.Printf("EMD to ground truth: %.5f\n\n", d0)
	}

	for i := 0; i < budget; i++ {
		rep, err := session.RunIteration(user)
		if err != nil {
			return err
		}
		if rep.Exhausted {
			fmt.Println("Nothing left to ask — the ERG is exhausted.")
			break
		}
		checkpoint()
		fmt.Printf("iteration %2d [%s]: %d questions (T=%d A=%d M=%d O=%d), moved %.5f",
			rep.Iteration, rep.Selector, rep.Questions(),
			rep.TQuestions, rep.AQuestions, rep.MQuestions, rep.OQuestions, rep.DistMoved)
		if cfg.TruthVis != nil {
			fmt.Printf(", EMD to truth %.5f", rep.DistToTruth)
		}
		fmt.Println()
	}

	final, err := session.CurrentVis()
	if err != nil {
		return err
	}
	fmt.Printf("\nCleaned visualization after %d iterations:\n%s", session.Iteration(), render.Chart(final, 50))
	if truth != nil && cfg.TruthVis != nil {
		fmt.Printf("\nGround-truth visualization:\n%s", render.Chart(cfg.TruthVis, 50))
	}
	return nil
}

// terminalUser answers questions on the terminal, rendering each CQG
// first — the text edition of the paper's graph GUI.
type terminalUser struct {
	in    *bufio.Scanner
	table *dataset.Table
}

func (u *terminalUser) BeginCQG(g *erg.Graph) {
	fmt.Println()
	fmt.Print(render.CQG(g))
}

func (u *terminalUser) prompt(q string) (string, bool) {
	fmt.Print(q)
	if !u.in.Scan() {
		return "", false
	}
	return strings.TrimSpace(u.in.Text()), true
}

func (u *terminalUser) yesNo(q string) (bool, bool) {
	for {
		ans, ok := u.prompt(q + " [y/n/skip] ")
		if !ok {
			return false, false
		}
		switch strings.ToLower(ans) {
		case "y", "yes":
			return true, true
		case "n", "no":
			return false, true
		case "s", "skip", "":
			return false, false
		}
	}
}

func (u *terminalUser) showTuple(id dataset.TupleID) {
	row, ok := u.table.RowByID(id)
	if !ok {
		return
	}
	var cells []string
	for c, v := range row {
		cells = append(cells, fmt.Sprintf("%s=%s", u.table.Schema()[c].Name, v))
	}
	fmt.Printf("  t%d: %s\n", id, strings.Join(cells, " | "))
}

func (u *terminalUser) AnswerT(a, b dataset.TupleID) (bool, bool) {
	u.showTuple(a)
	u.showTuple(b)
	return u.yesNo(fmt.Sprintf("Are t%d and t%d the same entity?", a, b))
}

func (u *terminalUser) AnswerA(column, v1, v2 string) (bool, bool) {
	return u.yesNo(fmt.Sprintf("Do %s values %q and %q denote the same thing?", column, v1, v2))
}

func (u *terminalUser) AnswerM(column string, id dataset.TupleID) (float64, bool) {
	u.showTuple(id)
	for {
		ans, ok := u.prompt(fmt.Sprintf("t%d is missing %s — enter the value (or skip): ", id, column))
		if !ok || ans == "" || strings.EqualFold(ans, "skip") {
			return 0, false
		}
		if f, err := strconv.ParseFloat(ans, 64); err == nil {
			return f, true
		}
		fmt.Println("  not a number")
	}
}

func (u *terminalUser) AnswerO(column string, id dataset.TupleID, current float64) (bool, float64, bool) {
	u.showTuple(id)
	isOut, answered := u.yesNo(fmt.Sprintf("Is %s=%g of t%d wrong (an outlier)?", column, current, id))
	if !answered {
		return false, 0, false
	}
	if !isOut {
		return false, current, true
	}
	for {
		ans, ok := u.prompt("  enter the corrected value (or skip): ")
		if !ok || ans == "" || strings.EqualFold(ans, "skip") {
			return false, 0, false
		}
		if f, err := strconv.ParseFloat(ans, 64); err == nil {
			return true, f, true
		}
		fmt.Println("  not a number")
	}
}
