// Command vqlrun executes a VQL visualization query against a CSV file
// and renders the resulting chart in the terminal.
//
// Usage:
//
//	vqlrun -csv data.csv -query "VISUALIZE bar SELECT Venue, SUM(Citations) FROM d TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10"
package main

import (
	"flag"
	"fmt"
	"os"

	"visclean/internal/dataset"
	"visclean/internal/render"
	"visclean/internal/vql"
)

func main() {
	csvPath := flag.String("csv", "", "input CSV file (header row required)")
	queryStr := flag.String("query", "", "VQL query to execute")
	width := flag.Int("width", 50, "bar chart width in characters")
	vega := flag.Bool("vega", false, "emit a Vega-Lite v5 JSON spec instead of ASCII")
	flag.Parse()

	if *csvPath == "" || *queryStr == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*csvPath, *queryStr, *width, *vega); err != nil {
		fmt.Fprintln(os.Stderr, "vqlrun:", err)
		os.Exit(1)
	}
}

func run(csvPath, queryStr string, width int, vega bool) error {
	tbl, err := dataset.LoadCSVFile(csvPath, nil)
	if err != nil {
		return err
	}
	q, err := vql.Parse(queryStr)
	if err != nil {
		return err
	}
	d, err := q.Execute(tbl)
	if err != nil {
		return err
	}
	if vega {
		spec, err := render.VegaLite(d, q.String())
		if err != nil {
			return err
		}
		fmt.Println(spec)
		return nil
	}
	fmt.Printf("%s over %d rows → %d marks\n\n", q.String(), tbl.NumRows(), len(d.Points))
	fmt.Print(render.Chart(d, width))
	return nil
}
