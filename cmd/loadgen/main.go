// Command loadgen storms a VisClean cluster with concurrent
// oracle-backed cleaning sessions and reports the latency and
// placement profile as BENCH_load.json (see internal/loadgen).
//
// Two modes:
//
//	loadgen -self 2 -sessions 200 -concurrency 200        # self-contained: spins 2 shards + router in-process
//	loadgen -router http://127.0.0.1:8080 -sessions 200   # external: storm an already-running cluster
//
// Self mode binds every shard and the router to ephemeral 127.0.0.1
// ports, points all shards at one shared snapshot directory (the
// cluster durability substrate, DESIGN.md §9), runs the storm, and
// tears everything down — one process, no orchestration, which is how
// scripts/bench.sh produces BENCH_load.json.
//
// In external mode, pass -shards with the shard base URLs to get the
// sessions-per-shard column; without it the report omits placement.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"visclean/internal/cluster"
	"visclean/internal/loadgen"
	"visclean/internal/obs"
	"visclean/internal/service"
	"visclean/internal/web"
)

func main() {
	self := flag.Int("self", 0, "spin up N in-process shards + router instead of targeting a running cluster")
	router := flag.String("router", "", "router (or single shard) base URL to storm (external mode)")
	shards := flag.String("shards", "", "comma-separated shard base URLs for the placement scrape (external mode)")
	sessions := flag.Int("sessions", 200, "total sessions to run")
	concurrency := flag.Int("concurrency", 0, "max sessions in flight (default: all)")
	iters := flag.Int("iters", 2, "iterations per session")
	dataset := flag.String("dataset", "D1", "dataset: D1, D2 or D3")
	scale := flag.Float64("scale", 0.002, "dataset scale factor")
	seed := flag.Int64("seed", 1, "base seed; sessions spread over a few consecutive seeds")
	k := flag.Int("k", 10, "CQG size")
	selector := flag.String("selector", "gss", "CQG selection algorithm")
	workers := flag.Int("workers", 0, "iteration workers per in-process shard (default: NumCPU)")
	out := flag.String("out", "BENCH_load.json", "report output path")
	verbose := flag.Bool("v", false, "log per-session failures and progress")
	flag.Parse()

	if err := run(*self, *router, *shards, *sessions, *concurrency, *iters,
		*dataset, *scale, *seed, *k, *selector, *workers, *out, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// selfShard is one in-process shard: registry + web server on a real
// localhost listener.
type selfShard struct {
	reg *service.Registry
	srv *http.Server
	url string
}

func startShard(snapDir string, maxSessions, workers int) (*selfShard, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	reg := service.NewRegistry(service.Config{
		MaxSessions: maxSessions,
		Workers:     workers,
		SnapshotDir: snapDir,
		Logf:        func(string, ...any) {},
	})
	ws := web.New(web.Config{Registry: reg})
	ws.SetReady(true)
	srv := &http.Server{Handler: ws.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &selfShard{reg: reg, srv: srv, url: "http://" + ln.Addr().String()}, nil
}

func run(self int, routerURL, shardList string, sessions, concurrency, iters int,
	dataset string, scale float64, seed int64, k int, selector string,
	workers int, out string, verbose bool) error {
	logf := func(string, ...any) {}
	if verbose {
		logf = log.Printf
	}
	var shardURLs []string
	if self > 0 {
		obs.SetEnabled(true)
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		snapDir, err := os.MkdirTemp("", "loadgen-snapshots-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(snapDir)
		var shardsUp []*selfShard
		defer func() {
			for _, sh := range shardsUp {
				_ = sh.srv.Close()
				sh.reg.Shutdown()
			}
		}()
		for i := 0; i < self; i++ {
			sh, err := startShard(snapDir, sessions+8, workers)
			if err != nil {
				return err
			}
			shardsUp = append(shardsUp, sh)
			shardURLs = append(shardURLs, sh.url)
		}
		rt, err := cluster.New(cluster.Config{
			Shards:         shardURLs,
			HealthInterval: 250 * time.Millisecond,
			Logf:           logf,
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		rsrv := &http.Server{Handler: rt.Handler()}
		go func() { _ = rsrv.Serve(rln) }()
		defer rsrv.Close()
		routerURL = "http://" + rln.Addr().String()
		log.Printf("loadgen: self cluster up: router %s over %d shard(s)", routerURL, self)
	} else {
		if routerURL == "" {
			return fmt.Errorf("pass -router URL or -self N")
		}
		for _, s := range strings.Split(shardList, ",") {
			if s = strings.TrimSpace(s); s != "" {
				shardURLs = append(shardURLs, strings.TrimRight(s, "/"))
			}
		}
	}

	rep, err := loadgen.Run(loadgen.Options{
		BaseURL:     routerURL,
		Shards:      shardURLs,
		Sessions:    sessions,
		Concurrency: concurrency,
		Iterations:  iters,
		Spec: loadgen.SpecJSON{
			Dataset: dataset, Scale: scale, Seed: seed,
			K: k, Selector: selector,
		},
		Logf: logf,
	})
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(out); err != nil {
		return err
	}
	log.Printf("loadgen: %d/%d sessions completed in %.1fs — answers p50=%.1fms p99=%.1fms (n=%d), iterate p99=%.1fms, 503s=%d, report: %s",
		rep.Completed, rep.Sessions, rep.ElapsedSec,
		rep.Answer.P50Ms, rep.Answer.P99Ms, rep.Answer.Count,
		rep.Iterate.P99Ms, rep.Rejects503, out)
	for _, sl := range rep.SessionsPerShard {
		log.Printf("loadgen:   shard %s: %d session(s)", sl.Shard, sl.Sessions)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d session(s) failed", rep.Failed)
	}
	return nil
}
