// Command datagen emits the paper's synthetic evaluation datasets (D1 DB
// Papers, D2 NBA Players, D3 Books — Table IV) as CSV files: the dirty
// table, the clean consolidated table, and a summary of the error rates.
//
// Usage:
//
//	datagen -dataset D1 -scale 0.05 -seed 1 -out ./data
//
// -scale multiplies the paper's entity counts and goes far past them:
// -scale 100 generates ≈5.05M D1 tuples in ~30s on the columnar engine
// (DESIGN.md §11); the at-scale pipeline harness behind VISCLEAN_SCALE
// (internal/pipeline/scale_test.go) consumes the same generator.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"visclean/internal/datagen"
)

func main() {
	name := flag.String("dataset", "D1", "dataset to generate: D1, D2, D3 or all")
	scale := flag.Float64("scale", 0.05, "entity-count scale factor (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	names := []string{*name}
	if *name == "all" {
		names = []string{"D1", "D2", "D3"}
	}
	for _, n := range names {
		if err := emit(n, *scale, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}
}

func emit(name string, scale float64, seed int64, out string) error {
	cfg := datagen.Config{Scale: scale, Seed: seed}
	var d *datagen.Dataset
	switch name {
	case "D1":
		d = datagen.D1(cfg)
	case "D2":
		d = datagen.D2(cfg)
	case "D3":
		d = datagen.D3(cfg)
	default:
		return fmt.Errorf("unknown dataset %q (want D1, D2, D3 or all)", name)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	dirtyPath := filepath.Join(out, name+"_dirty.csv")
	cleanPath := filepath.Join(out, name+"_clean.csv")
	if err := d.Dirty.SaveCSVFile(dirtyPath); err != nil {
		return err
	}
	if err := d.Truth.Clean.SaveCSVFile(cleanPath); err != nil {
		return err
	}
	s := d.Stats()
	fmt.Printf("%s: %d tuples (%d distinct entities), %d attributes → %s\n",
		name, s.Tuples, s.DistinctTuples, s.Attributes, dirtyPath)
	fmt.Printf("%s: missing %.1f%%, outliers %.1f%% on %v; clean table → %s\n",
		name, s.MissingRate*100, s.OutlierRate*100, d.MeasureColumns, cleanPath)
	return nil
}
