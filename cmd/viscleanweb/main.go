// Command viscleanweb serves VisClean's composite-question GUI (§VI) in
// the browser: the progressive chart on top, the current composite
// question below it, with confirm/split buttons on edges and
// approve/reject controls on vertex repairs — the web edition of the
// paper's Fig 9 interface.
//
// Usage:
//
//	viscleanweb -dataset D1 -scale 0.01 -addr :8080
//	viscleanweb -dataset D1 -scale 0.01 -auto   # oracle answers, watch it clean
//
// Then open http://localhost:8080.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"visclean/internal/datagen"
	"visclean/internal/oracle"
	"visclean/internal/pipeline"
	"visclean/internal/vql"
)

func main() {
	dsName := flag.String("dataset", "D1", "synthetic dataset: D1, D2 or D3")
	scale := flag.Float64("scale", 0.01, "dataset scale factor")
	queryStr := flag.String("query", "", "VQL query (default: a representative query)")
	k := flag.Int("k", 10, "CQG size")
	seed := flag.Int64("seed", 1, "random seed")
	addr := flag.String("addr", ":8080", "listen address")
	auto := flag.Bool("auto", false, "let the ground-truth oracle answer instead of the browser user")
	flag.Parse()

	if err := run(*dsName, *queryStr, *scale, *k, *seed, *addr, *auto); err != nil {
		fmt.Fprintln(os.Stderr, "viscleanweb:", err)
		os.Exit(1)
	}
}

var defaultQueries = map[string]string{
	"D1": `VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`,
	"D2": `VISUALIZE bar SELECT Team, SUM(#Points) FROM D2 TRANSFORM GROUP BY Team SORT Y BY DESC LIMIT 10`,
	"D3": `VISUALIZE bar SELECT Publ, AVG(Rating) FROM D3 TRANSFORM GROUP BY Publ SORT Y BY DESC LIMIT 10`,
}

func run(dsName, queryStr string, scale float64, k int, seed int64, addr string, auto bool) error {
	cfg := datagen.Config{Scale: scale, Seed: seed}
	var d *datagen.Dataset
	switch dsName {
	case "D1":
		d = datagen.D1(cfg)
	case "D2":
		d = datagen.D2(cfg)
	case "D3":
		d = datagen.D3(cfg)
	default:
		return fmt.Errorf("unknown dataset %q", dsName)
	}
	if queryStr == "" {
		queryStr = defaultQueries[dsName]
	}
	q, err := vql.Parse(queryStr)
	if err != nil {
		return err
	}
	pcfg := pipeline.Config{K: k, Seed: seed}
	if tv, err := q.Execute(d.Truth.Clean); err == nil {
		pcfg.TruthVis = tv
	}
	session, err := pipeline.NewSession(d.Dirty, q, d.KeyColumns, pcfg)
	if err != nil {
		return err
	}

	srv := newServer(session, q.String())
	if auto {
		srv.autoUser = oracle.New(d.Truth, seed)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", srv.handleIndex)
	mux.HandleFunc("/api/state", srv.handleState)
	mux.HandleFunc("/api/iterate", srv.handleIterate)
	mux.HandleFunc("/api/answer", srv.handleAnswer)

	log.Printf("viscleanweb: %s on http://localhost%s (auto=%v)", dsName, addr, auto)
	return http.ListenAndServe(addr, mux)
}
