// Command viscleanweb serves VisClean's composite-question GUI (§VI) in
// the browser — the web edition of the paper's Fig 9 interface — as a
// multi-tenant service: every browser tab gets its own cleaning session
// behind an opaque id, managed by the internal/service registry
// (capacity cap, idle eviction, bounded iteration workers, snapshot
// persistence). The HTTP shell itself lives in internal/web so the same
// server runs standalone here and as one shard of a cluster behind
// cmd/viscleanrouter.
//
// Usage:
//
//	viscleanweb -dataset D1 -scale 0.01 -addr :8080
//	viscleanweb -dataset D1 -scale 0.01 -auto          # oracle answers, watch it clean
//	viscleanweb -snapshots ./sessions                  # sessions survive restarts
//	viscleanweb -artifact-cache-mb 512                 # grow the shared artifact cache (0 disables)
//
// Then open http://localhost:8080. The flags set the default spec for
// new sessions; POST /api/session bodies override per session.
//
// API:
//
//	POST   /api/session              → {"id": "..."}    create (503 when at capacity; body "id" pins the id, body "queries" adds extra views)
//	GET    /api/sessions             → [...]            list live sessions
//	GET    /api/session/{id}/state   → state JSON       charts (all views), question, report
//	POST   /api/session/{id}/iterate → 202              run one iteration (503 on overload)
//	POST   /api/session/{id}/answer  → 204              answer the pending question
//	POST   /api/session/{id}/view    → {"view": n}      register another VQL view mid-session (409 while iterating)
//	GET    /api/session/{id}/view/{v}/chart → view JSON one view's query + current chart
//	POST   /api/session/{id}/export  → snapshot JSON    detach for migration (cluster internal)
//	POST   /api/session/import       → 204              attach a detached snapshot (cluster internal)
//	DELETE /api/session/{id}         → 204              close and forget
//	GET    /healthz                  → 200              liveness (process up)
//	GET    /readyz                   → 200/503          readiness: "ok" after restore, "draining" during shutdown
//	GET    /metrics                  → text             Prometheus exposition (catalog: DESIGN.md §5)
//	GET    /debug/traces             → JSON             recent per-iteration phase spans
//
// With -pprof, net/http/pprof is additionally mounted under
// /debug/pprof/ on the same listener. With -faults, named failpoints
// are armed for failure drills against a disposable server — see
// internal/fault for the spec grammar and DESIGN.md §8 for the
// failpoint catalog.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"visclean/internal/fault"
	"visclean/internal/obs"
	"visclean/internal/service"
	"visclean/internal/web"
)

func main() {
	dsName := flag.String("dataset", "D1", "default synthetic dataset: D1, D2 or D3")
	scale := flag.Float64("scale", 0.01, "default dataset scale factor")
	queryStr := flag.String("query", "", "default VQL query (default: a representative query)")
	k := flag.Int("k", 10, "default CQG size")
	seed := flag.Int64("seed", 1, "default random seed")
	addr := flag.String("addr", ":8080", "listen address")
	auto := flag.Bool("auto", false, "let the ground-truth oracle answer instead of the browser user")
	maxSessions := flag.Int("max-sessions", 64, "max concurrent sessions (server busy beyond)")
	workers := flag.Int("workers", 4, "max concurrently computing iterations")
	idleTTL := flag.Duration("idle-ttl", 15*time.Minute, "idle time before a session is evicted to disk")
	snapshots := flag.String("snapshots", "", "directory for session snapshots (empty: no persistence)")
	artifactMB := flag.Int("artifact-cache-mb", 256, "shared artifact cache budget in MiB; 0 disables the cache, negative removes the budget")
	drainWait := flag.Duration("drain-wait", 0, "on SIGTERM, stay in draining state up to this long so a cluster router can migrate sessions off before shutdown")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes goroutine and heap dumps)")
	faults := flag.String("faults", "", "DEBUG: arm failpoints, e.g. 'service/persist.rename=error@2;service/persist.sync=delay:50ms@every3' (grammar: internal/fault, catalog: DESIGN.md §8)")
	flag.Parse()

	if err := run(*dsName, *queryStr, *scale, *k, *seed, *addr, *auto,
		*maxSessions, *workers, *idleTTL, *snapshots, *artifactMB, *drainWait, *pprofOn, *faults); err != nil {
		fmt.Fprintln(os.Stderr, "viscleanweb:", err)
		os.Exit(1)
	}
}

func run(dsName, queryStr string, scale float64, k int, seed int64, addr string, auto bool,
	maxSessions, workers int, idleTTL time.Duration, snapshots string, artifactMB int,
	drainWait time.Duration, pprofOn bool, faults string) error {
	if faults != "" {
		// Debug-only: deliberately degrade the server to rehearse failure
		// handling (DESIGN.md §8). Loud by design.
		if err := fault.ParseSpec(faults); err != nil {
			return err
		}
		log.Printf("viscleanweb: DEBUG FAULT INJECTION ARMED: %v — do not run production traffic", fault.Armed())
	}
	// The server always runs with observability on: metric updates are a
	// few atomic ops per iteration — noise next to an iteration's cost —
	// and /metrics and /debug/traces are only useful populated.
	obs.SetEnabled(true)
	obs.DefaultTracer.SetEnabled(true)
	if snapshots != "" {
		if err := os.MkdirAll(snapshots, 0o755); err != nil {
			return err
		}
	}
	scfg := service.Config{
		MaxSessions: maxSessions,
		Workers:     workers,
		IdleTTL:     idleTTL,
		SnapshotDir: snapshots,
	}
	switch {
	case artifactMB == 0:
		scfg.NoArtifactCache = true
	case artifactMB < 0:
		scfg.ArtifactBudget = -1 // unlimited
	default:
		scfg.ArtifactBudget = int64(artifactMB) << 20
	}
	reg := service.NewRegistry(scfg)
	if n := reg.RestoreAll(); n > 0 {
		log.Printf("viscleanweb: restored %d session(s) from %s", n, snapshots)
	}

	srv := web.New(web.Config{
		Registry: reg,
		Defaults: service.Spec{
			Dataset: dsName, Scale: scale, Seed: seed,
			Query: queryStr, K: k, Auto: auto,
		},
		Pprof: pprofOn,
	})
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	// Ready only after RestoreAll: a router probing /readyz never routes
	// a session here before its snapshot could have been restored.
	srv.SetReady(true)

	// On SIGINT/SIGTERM, flip to draining (readyz fails, router migrates
	// sessions off), optionally wait for the registry to empty, then stop
	// accepting requests and snapshot whatever is still here so a
	// restarted server resumes it.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("viscleanweb: serving on http://localhost%s (default dataset %s, auto=%v, snapshots=%q)",
		addr, dsName, auto, snapshots)

	select {
	case sig := <-stop:
		log.Printf("viscleanweb: %v — draining", sig)
		srv.SetDraining()
		if drainWait > 0 {
			deadline := time.Now().Add(drainWait)
			for time.Now().Before(deadline) && reg.Len() > 0 {
				time.Sleep(200 * time.Millisecond)
			}
			if n := reg.Len(); n > 0 {
				log.Printf("viscleanweb: drain window elapsed with %d session(s) still local; persisting them", n)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		reg.Shutdown()
		return nil
	case err := <-errCh:
		reg.Shutdown()
		return err
	}
}
