package main

import (
	"encoding/json"
	"net/http"
	"sync"

	"visclean/internal/dataset"
	"visclean/internal/erg"
	"visclean/internal/pipeline"
	"visclean/internal/vis"
)

// server owns the cleaning session and bridges the pull-based User
// interface (the session asks questions) to the push-based HTTP world
// (the browser answers them): RunIteration executes in a goroutine with
// a channel-backed User; each question parks in `pending` until an
// /api/answer arrives.
type server struct {
	mu       sync.Mutex
	session  *pipeline.Session
	query    string
	autoUser pipeline.User // when set, answers come from the oracle

	running  bool
	pending  *question
	answerCh chan answer
	lastRep  *pipeline.Report
	cqg      *cqgView
	err      string
}

type question struct {
	ID      int       `json:"id"`
	Kind    string    `json:"kind"` // "T", "A", "M", "O"
	Prompt  string    `json:"prompt"`
	Column  string    `json:"column,omitempty"`
	V1      string    `json:"v1,omitempty"`
	V2      string    `json:"v2,omitempty"`
	Current float64   `json:"current,omitempty"`
	Tuples  [][]cellV `json:"tuples,omitempty"`
}

type cellV struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

type answer struct {
	Yes   bool
	Value float64
	HasV  bool
	Skip  bool
}

type cqgView struct {
	Vertices []string `json:"vertices"`
	Edges    []string `json:"edges"`
}

func newServer(s *pipeline.Session, query string) *server {
	return &server{session: s, query: query, answerCh: make(chan answer)}
}

// webUser implements pipeline.User by parking each question on the
// server and blocking for the browser's answer.
type webUser struct{ s *server }

func (u webUser) BeginCQG(g *erg.Graph) {
	view := &cqgView{}
	for _, v := range g.Vertices() {
		label := tupleLabel(v)
		if r := g.Repair(v); r != nil {
			label += " [" + r.Kind.String() + "]"
		}
		view.Vertices = append(view.Vertices, label)
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		view.Edges = append(view.Edges, tupleLabel(e.A)+" — "+tupleLabel(e.B))
	}
	u.s.mu.Lock()
	u.s.cqg = view
	u.s.mu.Unlock()
}

func tupleLabel(id dataset.TupleID) string {
	return "t" + itoa(int(id))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ask parks a question and waits for its answer.
func (u webUser) ask(q question) answer {
	u.s.mu.Lock()
	q.ID++
	if u.s.pending != nil {
		q.ID = u.s.pending.ID + 1
	}
	u.s.pending = &q
	u.s.mu.Unlock()
	a := <-u.s.answerCh
	u.s.mu.Lock()
	u.s.pending = nil
	u.s.mu.Unlock()
	return a
}

func (u webUser) tupleCells(id dataset.TupleID) []cellV {
	t := u.s.session.Table()
	row, ok := t.RowByID(id)
	if !ok {
		return nil
	}
	out := make([]cellV, 0, len(row))
	for c, v := range row {
		out = append(out, cellV{Name: t.Schema()[c].Name, Value: v.String()})
	}
	return out
}

func (u webUser) AnswerT(a, b dataset.TupleID) (bool, bool) {
	ans := u.ask(question{
		Kind:   "T",
		Prompt: "Are " + tupleLabel(a) + " and " + tupleLabel(b) + " the same entity?",
		Tuples: [][]cellV{u.tupleCells(a), u.tupleCells(b)},
	})
	if ans.Skip {
		return false, false
	}
	return ans.Yes, true
}

func (u webUser) AnswerA(column, v1, v2 string) (bool, bool) {
	ans := u.ask(question{
		Kind:   "A",
		Prompt: "Do " + column + " values “" + v1 + "” and “" + v2 + "” denote the same thing?",
		Column: column, V1: v1, V2: v2,
	})
	if ans.Skip {
		return false, false
	}
	return ans.Yes, true
}

func (u webUser) AnswerM(column string, id dataset.TupleID) (float64, bool) {
	ans := u.ask(question{
		Kind:   "M",
		Prompt: tupleLabel(id) + " is missing its " + column + " value — what should it be?",
		Column: column,
		Tuples: [][]cellV{u.tupleCells(id)},
	})
	if ans.Skip || !ans.HasV {
		return 0, false
	}
	return ans.Value, true
}

func (u webUser) AnswerO(column string, id dataset.TupleID, current float64) (bool, float64, bool) {
	ans := u.ask(question{
		Kind:    "O",
		Prompt:  "Is " + column + " of " + tupleLabel(id) + " wrong (an outlier)? If yes, give the corrected value.",
		Column:  column,
		Current: current,
		Tuples:  [][]cellV{u.tupleCells(id)},
	})
	if ans.Skip {
		return false, 0, false
	}
	if !ans.Yes {
		return false, current, true
	}
	if !ans.HasV {
		return false, 0, false
	}
	return true, ans.Value, true
}

// handleIterate kicks off one iteration unless one is already running.
func (s *server) handleIterate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		http.Error(w, "iteration already running", http.StatusConflict)
		return
	}
	s.running = true
	s.cqg = nil
	s.err = ""
	s.mu.Unlock()

	go func() {
		var user pipeline.User = webUser{s: s}
		if s.autoUser != nil {
			user = s.autoUser
		}
		rep, err := s.session.RunIteration(user)
		s.mu.Lock()
		defer s.mu.Unlock()
		s.running = false
		if err != nil {
			s.err = err.Error()
			return
		}
		s.lastRep = &rep
	}()
	w.WriteHeader(http.StatusAccepted)
}

// handleAnswer resolves the pending question.
func (s *server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var body struct {
		Yes   *bool    `json:"yes"`
		Value *float64 `json:"value"`
		Skip  bool     `json:"skip"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	pendingExists := s.pending != nil
	s.mu.Unlock()
	if !pendingExists {
		http.Error(w, "no pending question", http.StatusConflict)
		return
	}
	a := answer{Skip: body.Skip}
	if body.Yes != nil {
		a.Yes = *body.Yes
	}
	if body.Value != nil {
		a.Value = *body.Value
		a.HasV = true
	}
	select {
	case s.answerCh <- a:
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "no question waiting", http.StatusConflict)
	}
}

type stateResponse struct {
	Query     string    `json:"query"`
	Iteration int       `json:"iteration"`
	Running   bool      `json:"running"`
	Chart     chartJSON `json:"chart"`
	Truth     float64   `json:"distToTruth"`
	Question  *question `json:"question,omitempty"`
	CQG       *cqgView  `json:"cqg,omitempty"`
	Report    *repJSON  `json:"lastReport,omitempty"`
	Error     string    `json:"error,omitempty"`
}

type chartJSON struct {
	Type   string    `json:"type"`
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

type repJSON struct {
	Questions int     `json:"questions"`
	Moved     float64 `json:"moved"`
	Exhausted bool    `json:"exhausted"`
}

func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := stateResponse{
		Query:     s.query,
		Iteration: s.session.Iteration(),
		Running:   s.running,
		Question:  s.pending,
		CQG:       s.cqg,
		Error:     s.err,
	}
	if s.lastRep != nil {
		resp.Report = &repJSON{
			Questions: s.lastRep.Questions(),
			Moved:     s.lastRep.DistMoved,
			Exhausted: s.lastRep.Exhausted,
		}
	}
	s.mu.Unlock()

	// CurrentVis touches session internals; only safe when no iteration
	// goroutine is mutating them.
	if !resp.Running {
		if v, err := s.session.CurrentVis(); err == nil {
			resp.Chart = toChartJSON(v)
		}
		if d, err := s.session.DistToTruth(); err == nil {
			resp.Truth = d
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func toChartJSON(v *vis.Data) chartJSON {
	out := chartJSON{Type: v.Type.String()}
	for _, p := range v.Points {
		out.Labels = append(out.Labels, p.Label)
		out.Values = append(out.Values, p.Y)
	}
	return out
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
