package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"visclean/internal/service"
	"visclean/internal/vis"
)

// webServer is a thin HTTP shell over the service layer: every handler
// parses the request, calls the session registry, and serializes the
// result. All session state, locking, lifecycle and persistence live in
// internal/service.
type webServer struct {
	reg *service.Registry
	// defaults seed new sessions from the command-line flags; request
	// bodies override field by field.
	defaults service.Spec
	// pprof mounts net/http/pprof under /debug/pprof/ when set.
	pprof bool
}

func newMux(s *webServer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("POST /api/session", s.handleCreate)
	mux.HandleFunc("GET /api/sessions", s.handleList)
	mux.HandleFunc("GET /api/session/{id}/state", s.handleState)
	mux.HandleFunc("POST /api/session/{id}/iterate", s.handleIterate)
	mux.HandleFunc("POST /api/session/{id}/answer", s.handleAnswer)
	mux.HandleFunc("DELETE /api/session/{id}", s.handleClose)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if s.pprof {
		mountPprof(mux)
	}
	return mux
}

// writeServiceError maps registry sentinel errors to HTTP statuses.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, service.ErrBusy), errors.Is(err, service.ErrOverloaded):
		w.Header().Set("Retry-After", "2")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, service.ErrIterationRunning), errors.Is(err, service.ErrNoQuestion):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, service.ErrClosed):
		http.Error(w, err.Error(), http.StatusGone)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleCreate builds a new session. The optional JSON body overrides
// the server's default spec field by field.
func (s *webServer) handleCreate(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Dataset  string  `json:"dataset"`
		Scale    float64 `json:"scale"`
		Seed     int64   `json:"seed"`
		Query    string  `json:"query"`
		K        int     `json:"k"`
		Selector string  `json:"selector"`
		Auto     *bool   `json:"auto"`
	}
	if data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	} else if len(data) > 0 {
		if err := json.Unmarshal(data, &body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	spec := s.defaults
	if body.Dataset != "" && body.Dataset != spec.Dataset {
		spec.Dataset = body.Dataset
		spec.Query = "" // the flag query targets the flag dataset
	}
	if body.Scale != 0 {
		spec.Scale = body.Scale
	}
	if body.Seed != 0 {
		spec.Seed = body.Seed
	}
	if body.Query != "" {
		spec.Query = body.Query
	}
	if body.K != 0 {
		spec.K = body.K
	}
	if body.Selector != "" {
		spec.Selector = body.Selector
	}
	if body.Auto != nil {
		spec.Auto = *body.Auto
	}
	id, err := s.reg.Create(spec)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *webServer) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

type stateResponse struct {
	ID        string            `json:"id"`
	Query     string            `json:"query"`
	Iteration int               `json:"iteration"`
	Running   bool              `json:"running"`
	Chart     chartJSON         `json:"chart"`
	Truth     float64           `json:"distToTruth"`
	Question  *service.Question `json:"question,omitempty"`
	CQG       *service.CQGView  `json:"cqg,omitempty"`
	Report    *repJSON          `json:"lastReport,omitempty"`
	Error     string            `json:"error,omitempty"`
}

type chartJSON struct {
	Type   string    `json:"type"`
	Labels []string  `json:"labels"`
	Values []float64 `json:"values"`
}

type repJSON struct {
	Questions int     `json:"questions"`
	Moved     float64 `json:"moved"`
	Exhausted bool    `json:"exhausted"`
}

func (s *webServer) handleState(w http.ResponseWriter, r *http.Request) {
	st, err := s.reg.State(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	resp := stateResponse{
		ID:        st.ID,
		Query:     st.Spec.Query,
		Iteration: st.Iteration,
		Running:   st.Running,
		Truth:     st.DistToTruth,
		Question:  st.Question,
		CQG:       st.CQG,
		Error:     st.Err,
	}
	if st.Vis != nil {
		resp.Chart = toChartJSON(st.Vis)
	}
	if st.Report != nil {
		resp.Report = &repJSON{
			Questions: st.Report.Questions(),
			Moved:     st.Report.DistMoved,
			Exhausted: st.Report.Exhausted,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *webServer) handleIterate(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Iterate(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func (s *webServer) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Yes   *bool    `json:"yes"`
		Value *float64 `json:"value"`
		Skip  bool     `json:"skip"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	a := service.Answer{Skip: body.Skip}
	if body.Yes != nil {
		a.Yes = *body.Yes
	}
	if body.Value != nil {
		a.Value = *body.Value
		a.HasValue = true
	}
	if err := s.reg.Answer(r.PathValue("id"), a); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *webServer) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Close(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func toChartJSON(v *vis.Data) chartJSON {
	out := chartJSON{Type: v.Type.String()}
	for _, p := range v.Points {
		out.Labels = append(out.Labels, p.Label)
		out.Values = append(out.Values, p.Y)
	}
	return out
}

func (s *webServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}
