package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"visclean/internal/datagen"
	"visclean/internal/oracle"
	"visclean/internal/pipeline"
	"visclean/internal/vql"
)

func testServer(t *testing.T, auto bool) *server {
	t.Helper()
	d := datagen.D1(datagen.Config{Scale: 0.004, Seed: 3})
	q := vql.MustParse(`VISUALIZE bar SELECT Venue, SUM(Citations) FROM D1 TRANSFORM GROUP BY Venue SORT Y BY DESC LIMIT 10`)
	tv, err := q.Execute(d.Truth.Clean)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pipeline.NewSession(d.Dirty, q, d.KeyColumns, pipeline.Config{Seed: 3, TruthVis: tv})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(s, q.String())
	if auto {
		srv.autoUser = oracle.New(d.Truth, 3)
	}
	return srv
}

func getState(t *testing.T, srv *server) stateResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.handleState(rec, httptest.NewRequest(http.MethodGet, "/api/state", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("state status %d", rec.Code)
	}
	var out stateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStateEndpoint(t *testing.T) {
	srv := testServer(t, false)
	s := getState(t, srv)
	if s.Iteration != 0 || s.Running {
		t.Fatalf("fresh state = %+v", s)
	}
	if len(s.Chart.Labels) == 0 {
		t.Fatal("no chart in initial state")
	}
	if s.Truth <= 0 {
		t.Fatal("dist to truth missing")
	}
}

func TestAutoIteration(t *testing.T) {
	srv := testServer(t, true)
	rec := httptest.NewRecorder()
	srv.handleIterate(rec, httptest.NewRequest(http.MethodPost, "/api/iterate", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("iterate status %d", rec.Code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := getState(t, srv); !s.Running {
			if s.Iteration != 1 {
				t.Fatalf("iteration = %d after auto run", s.Iteration)
			}
			if s.Report == nil || s.Report.Questions == 0 {
				t.Fatalf("report missing: %+v", s.Report)
			}
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("auto iteration never finished")
}

func TestIterateConflictWhileRunning(t *testing.T) {
	srv := testServer(t, false) // web user: iteration blocks on answers
	rec := httptest.NewRecorder()
	srv.handleIterate(rec, httptest.NewRequest(http.MethodPost, "/api/iterate", nil))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("iterate status %d", rec.Code)
	}
	rec2 := httptest.NewRecorder()
	srv.handleIterate(rec2, httptest.NewRequest(http.MethodPost, "/api/iterate", nil))
	if rec2.Code != http.StatusConflict {
		t.Fatalf("second iterate status %d, want conflict", rec2.Code)
	}
	// Answer questions (skipping everything) until the iteration ends so
	// the goroutine does not leak.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s := getState(t, srv)
		if !s.Running {
			return
		}
		if s.Question != nil {
			rec := httptest.NewRecorder()
			srv.handleAnswer(rec, httptest.NewRequest(http.MethodPost, "/api/answer",
				strings.NewReader(`{"skip":true}`)))
			if rec.Code != http.StatusNoContent && rec.Code != http.StatusConflict {
				t.Fatalf("answer status %d", rec.Code)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("iteration never finished under skip-all answers")
}

func TestAnswerWithoutQuestion(t *testing.T) {
	srv := testServer(t, false)
	rec := httptest.NewRecorder()
	srv.handleAnswer(rec, httptest.NewRequest(http.MethodPost, "/api/answer", strings.NewReader(`{"yes":true}`)))
	if rec.Code != http.StatusConflict {
		t.Fatalf("answer with no question: status %d", rec.Code)
	}
}

func TestAnswerBadJSON(t *testing.T) {
	srv := testServer(t, false)
	rec := httptest.NewRecorder()
	srv.handleAnswer(rec, httptest.NewRequest(http.MethodPost, "/api/answer", strings.NewReader(`{`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json status %d", rec.Code)
	}
}

func TestMethodGuards(t *testing.T) {
	srv := testServer(t, false)
	rec := httptest.NewRecorder()
	srv.handleIterate(rec, httptest.NewRequest(http.MethodGet, "/api/iterate", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET iterate status %d", rec.Code)
	}
	rec2 := httptest.NewRecorder()
	srv.handleAnswer(rec2, httptest.NewRequest(http.MethodGet, "/api/answer", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET answer status %d", rec2.Code)
	}
}

func TestIndexServesPage(t *testing.T) {
	srv := testServer(t, false)
	rec := httptest.NewRecorder()
	srv.handleIndex(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "VisClean") {
		t.Fatalf("index page wrong: %d", rec.Code)
	}
}
